"""Additional engine behaviours: record contents, budget overrides,
backend/policy combinations, iteration-level accounting."""

import pytest

from repro.gpu.spec import A100, H100
from repro.models.shard import ShardedModel
from repro.models.zoo import LLAMA3_8B, YI_6B
from repro.serving.engine import (
    EngineConfig,
    ITERATION_CPU_OVERHEAD,
    LLMEngine,
)
from repro.units import GB, KB, MB
from repro.workloads.traces import fixed_trace


def make_engine(**overrides) -> LLMEngine:
    defaults = dict(
        shard=ShardedModel(YI_6B, 1),
        gpu=A100,
        memory_backend="vattention",
        max_batch_size=8,
    )
    defaults.update(overrides)
    return LLMEngine(EngineConfig(**defaults))


class TestIterationRecords:
    def test_prefill_record_tokens_equal_prompt(self):
        engine = make_engine()
        engine.submit(fixed_trace(count=1, prompt_len=5_000, max_new_tokens=2))
        report = engine.run()
        (prefill,) = report.metrics.of_phase("prefill")
        assert prefill.tokens == 5_000
        assert prefill.batch_size == 1
        assert prefill.latency > 0

    def test_decode_records_count_tokens(self):
        engine = make_engine()
        engine.submit(fixed_trace(count=3, prompt_len=1_000, max_new_tokens=6))
        report = engine.run()
        decode_tokens = sum(
            r.tokens for r in report.metrics.of_phase("decode")
        )
        assert decode_tokens == 3 * 5  # prefill emits token #1

    def test_alloc_sync_visible_when_overlap_disabled(self):
        engine = make_engine(
            overlap_allocation=False, eager_allocation=False,
            deferred_reclamation=False,
        )
        engine.submit(fixed_trace(count=1, prompt_len=8_192, max_new_tokens=2))
        report = engine.run()
        (prefill,) = report.metrics.of_phase("prefill")
        assert prefill.alloc_sync > 0

    def test_latency_floor_is_cpu_overhead(self):
        engine = make_engine()
        engine.submit(fixed_trace(count=1, prompt_len=100, max_new_tokens=2))
        report = engine.run()
        assert all(
            r.latency >= ITERATION_CPU_OVERHEAD
            for r in report.metrics.iterations
        )


class TestBudgetOverride:
    def test_kv_budget_caps_pool(self):
        engine = make_engine(kv_budget_bytes=2 * GB)
        assert engine.device.pool.capacity <= 2 * GB

    def test_budget_below_weights_still_validates(self):
        # The cap only ever *adds* reservation; weights stay accounted.
        engine = make_engine(kv_budget_bytes=60 * GB)
        weights = engine.config.shard.weight_bytes_per_worker
        assert engine.device.reserved_bytes >= weights

    def test_tiny_budget_rejected_at_manager_level(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            make_engine(kv_budget_bytes=1 * MB)  # below one row


class TestPolicyMatrix:
    @pytest.mark.parametrize("backend,kernels,block", [
        ("vattention", ("fa2", "fa2"), 16),
        ("paged", ("fa2_paged", "fa2_paged"), 256),
    ])
    @pytest.mark.parametrize("chunk", [None, 2_048])
    def test_backend_x_chunking(self, backend, kernels, block, chunk):
        engine = make_engine(
            memory_backend=backend,
            prefill_kernel=kernels[0],
            decode_kernel=kernels[1],
            block_size=block,
            prefill_chunk_size=chunk,
        )
        engine.submit(fixed_trace(count=3, prompt_len=5_000, max_new_tokens=6))
        report = engine.run()
        assert len(report.finished_requests) == 3

    def test_swap_plus_chunked_compose(self):
        engine = make_engine(
            preemption_mode="swap",
            prefill_chunk_size=2_048,
            kv_budget_bytes=3 * GB,
            eager_allocation=False,
        )
        engine.submit(
            fixed_trace(count=3, prompt_len=16_384, max_new_tokens=200)
        )
        report = engine.run()
        assert len(report.finished_requests) == 3

    def test_small_pages_end_to_end(self):
        engine = make_engine(page_group_size=64 * KB)
        engine.submit(fixed_trace(count=4, prompt_len=2_000, max_new_tokens=8))
        report = engine.run()
        assert len(report.finished_requests) == 4
        # 64-token rows: mapping counters reflect the finer granularity.
        assert engine.memory.manager.stats.rows_mapped >= 4 * (2_000 // 64)

    def test_h100_chunked_fa3(self):
        engine = make_engine(
            gpu=H100, prefill_kernel="fa3", decode_kernel="fa3",
            prefill_chunk_size=4_096,
        )
        engine.submit(fixed_trace(count=2, prompt_len=16_000, max_new_tokens=5))
        report = engine.run()
        assert len(report.finished_requests) == 2


class TestTpDeployments:
    def test_tp2_iteration_faster_than_tp1(self):
        def makespan(tp):
            engine = make_engine(shard=ShardedModel(LLAMA3_8B, tp))
            engine.submit(
                fixed_trace(count=2, prompt_len=32_000, max_new_tokens=10)
            )
            return engine.run().makespan

        assert makespan(2) < makespan(1)

    def test_tp2_halves_per_worker_kv(self):
        tp1 = make_engine(shard=ShardedModel(LLAMA3_8B, 1))
        tp2 = make_engine(shard=ShardedModel(LLAMA3_8B, 2))
        row1 = tp1.memory.manager.config.row_bytes
        row2 = tp2.memory.manager.config.row_bytes
        assert row1 == row2  # same 2N x 2MB rows...
        assert (
            tp2.memory.manager.config.tokens_per_page_group
            == 2 * tp1.memory.manager.config.tokens_per_page_group
        )  # ...but each row holds twice the tokens per worker


class TestRunReportContents:
    def test_report_covers_all_requests(self):
        engine = make_engine()
        engine.submit(fixed_trace(count=5, prompt_len=500, max_new_tokens=3))
        report = engine.run()
        assert len(report.requests) == 5
        assert report.requests_per_minute() > 0
        assert report.median_latency() <= report.p99_latency()

    def test_ttft_precedes_finish(self):
        engine = make_engine()
        engine.submit(fixed_trace(count=2, prompt_len=4_000, max_new_tokens=10))
        report = engine.run()
        for request in report.finished_requests:
            assert request.ttft <= request.e2e_latency
