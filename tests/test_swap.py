"""Swap-to-host preemption extension (paper S5.3.3 future work)."""

import pytest

from repro.errors import ConfigError, SchedulingError
from repro.gpu.spec import A100
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.serving.engine import EngineConfig, LLMEngine
from repro.serving.request import Request, RequestState
from repro.serving.swap import HostSwapSpace, PCIE_BANDWIDTH
from repro.units import GB, MB
from repro.workloads.traces import fixed_trace


class TestHostSwapSpace:
    def test_transfer_latency_is_bytes_over_bandwidth(self):
        space = HostSwapSpace(capacity=1 * GB)
        seconds = space.swap_out("r1", 250 * MB)
        assert seconds == pytest.approx(250 * MB / PCIE_BANDWIDTH)
        assert space.swap_in("r1") == pytest.approx(seconds)

    def test_capacity_accounting(self):
        space = HostSwapSpace(capacity=1 * GB)
        space.swap_out("r1", 600 * MB)
        assert space.available == 1 * GB - 600 * MB
        assert not space.can_swap_out(600 * MB)
        assert space.stats.rejected_for_capacity == 1

    def test_swap_in_frees_host_memory(self):
        space = HostSwapSpace(capacity=1 * GB)
        space.swap_out("r1", 600 * MB)
        space.swap_in("r1")
        assert space.used == 0
        assert not space.holds("r1")

    def test_double_swap_out_rejected(self):
        space = HostSwapSpace(capacity=1 * GB)
        space.swap_out("r1", 1 * MB)
        with pytest.raises(SchedulingError):
            space.swap_out("r1", 1 * MB)

    def test_swap_in_of_absent_rejected(self):
        with pytest.raises(SchedulingError):
            HostSwapSpace(capacity=1 * GB).swap_in("ghost")

    def test_overflow_rejected(self):
        space = HostSwapSpace(capacity=1 * MB)
        with pytest.raises(SchedulingError):
            space.swap_out("big", 2 * MB)

    def test_drop(self):
        space = HostSwapSpace(capacity=1 * GB)
        space.swap_out("r1", 1 * MB)
        space.drop("r1")
        assert space.used == 0

    def test_invalid_construction(self):
        with pytest.raises(ConfigError):
            HostSwapSpace(capacity=0)
        with pytest.raises(ConfigError):
            HostSwapSpace(capacity=1, bandwidth=0)

    def test_stats_accumulate(self):
        space = HostSwapSpace(capacity=1 * GB)
        space.swap_out("r1", 100 * MB)
        space.swap_in("r1")
        assert space.stats.swap_outs == 1
        assert space.stats.swap_ins == 1
        assert space.stats.bytes_out == 100 * MB
        assert space.stats.bytes_in == 100 * MB


class TestRequestSwapSemantics:
    def test_preempt_swap_preserves_decode_state(self):
        request = Request(request_id="r", prompt_len=100, max_new_tokens=10)
        request.state = RequestState.RUNNING
        request.record_prefill(now=0.0)
        request.record_decode_token(now=1.0)
        request.preempt_swap()
        assert request.swapped
        assert request.prefill_done
        assert request.generated == 2
        assert request.resident_tokens_needed == request.context_len

    def test_preempt_swap_before_prefill_falls_back(self):
        request = Request(request_id="r", prompt_len=100, max_new_tokens=10)
        request.state = RequestState.RUNNING
        request.preempt_swap()
        assert not request.swapped  # nothing to swap; recompute semantics
        assert not request.prefill_done

    def test_resident_tokens_fresh_request(self):
        request = Request(request_id="r", prompt_len=100, max_new_tokens=10)
        assert request.resident_tokens_needed == 100


def engine_with(mode: str) -> LLMEngine:
    return LLMEngine(
        EngineConfig(
            shard=ShardedModel(YI_6B, 1),
            gpu=A100,
            memory_backend="vattention",
            max_batch_size=4,
            kv_budget_bytes=3 * GB,
            preemption_mode=mode,
            eager_allocation=False,
        )
    )


class TestEngineIntegration:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigError):
            engine_with("hibernate")

    def test_recompute_mode_has_no_swap_space(self):
        assert engine_with("recompute").swap_space is None

    def test_swap_avoids_recomputed_prefills(self):
        # 3 x 16384-token prompts exactly fill the 3GB budget; decode
        # growth forces a preemption.
        results = {}
        for mode in ("recompute", "swap"):
            engine = engine_with(mode)
            engine.submit(
                fixed_trace(count=3, prompt_len=16_384, max_new_tokens=300)
            )
            report = engine.run()
            results[mode] = (
                len(report.metrics.of_phase("prefill")),
                report.makespan,
                len(report.finished_requests),
            )
        recompute_prefills, recompute_time, done_r = results["recompute"]
        swap_prefills, swap_time, done_s = results["swap"]
        assert done_r == done_s == 3
        assert swap_prefills < recompute_prefills
        assert swap_time < recompute_time

    def test_swap_transfers_accounted(self):
        engine = engine_with("swap")
        engine.submit(
            fixed_trace(count=3, prompt_len=16_384, max_new_tokens=300)
        )
        engine.run()
        stats = engine.swap_space.stats
        assert stats.swap_outs == stats.swap_ins  # all restored
        assert stats.swap_outs >= 1
        assert stats.seconds_out > 0

    def test_admit_charges_swap_in_and_clears_flag(self):
        # The swap-in admission path of LLMEngine._admit: a request
        # preempted with its KV in host memory must, on re-admission,
        # pay the PCIe transfer on the clock and come back resident.
        engine = engine_with("swap")
        engine.submit(
            fixed_trace(count=1, prompt_len=16_384, max_new_tokens=300)
        )
        engine.run(max_iterations=3)  # prefill + a couple of decodes
        (victim,) = engine._running
        assert victim.prefill_done

        # Preempt exactly the way _prepare_or_preempt does.
        nbytes = victim.context_len * engine.config.shard.kv_bytes_per_token
        engine._running.remove(victim)
        engine.memory.release(victim)
        engine._evict(victim)
        victim.state = RequestState.QUEUED
        engine._waiting.appendleft(victim)
        assert victim.swapped
        assert engine.swap_space.holds(victim.request_id)

        before = engine.clock.now
        engine._admit()
        # Re-admitted, resident again, PCIe latency on the clock.
        assert victim.state is RequestState.RUNNING
        assert not victim.swapped
        assert not engine.swap_space.holds(victim.request_id)
        expected = nbytes / PCIE_BANDWIDTH
        assert engine.clock.now - before == pytest.approx(expected)
        assert engine.swap_space.stats.swap_ins == 1
        # The restored request decodes to completion without another
        # prefill (its KV survived the round trip).
        report = engine.run()
        assert len(report.finished_requests) == 1
        assert len(report.metrics.of_phase("prefill")) == 1

    def test_swap_capacity_falls_back_to_recompute(self):
        engine = LLMEngine(
            EngineConfig(
                shard=ShardedModel(YI_6B, 1),
                gpu=A100,
                memory_backend="vattention",
                max_batch_size=4,
                kv_budget_bytes=3 * GB,
                preemption_mode="swap",
                swap_host_bytes=1 * MB,  # too small for any KV cache
                eager_allocation=False,
            )
        )
        engine.submit(
            fixed_trace(count=3, prompt_len=16_384, max_new_tokens=300)
        )
        report = engine.run()
        assert len(report.finished_requests) == 3
        assert engine.swap_space.stats.swap_outs == 0
        assert engine.swap_space.stats.rejected_for_capacity >= 1
