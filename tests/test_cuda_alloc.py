"""cudaMalloc-style caching allocator (the pre-PagedAttention baseline)."""

import pytest

from repro.errors import InvalidHandle
from repro.gpu.clock import SimClock
from repro.gpu.cuda_alloc import (
    CudaCachingAllocator,
    SEGMENT_GRANULARITY,
    static_kv_cache_bytes,
)
from repro.gpu.phys import PhysicalMemoryPool
from repro.units import GB, KB, MB


@pytest.fixture
def allocator() -> CudaCachingAllocator:
    pool = PhysicalMemoryPool(capacity=1 * GB)
    return CudaCachingAllocator(pool, SimClock())


class TestReservationSemantics:
    def test_malloc_commits_physical_memory(self, allocator):
        allocator.malloc(10 * MB)
        # Reservation-based: committed even though never touched.
        assert allocator._pool.committed == 10 * MB

    def test_rounds_to_segments(self, allocator):
        buffer = allocator.malloc(3 * MB + 1)
        assert buffer.committed == 4 * MB
        assert buffer.committed % SEGMENT_GRANULARITY == 0

    def test_rejects_nonpositive(self, allocator):
        with pytest.raises(ValueError):
            allocator.malloc(0)

    def test_live_bytes(self, allocator):
        allocator.malloc(2 * MB)
        allocator.malloc(2 * MB)
        assert allocator.live_bytes == 4 * MB


class TestCaching:
    def test_free_keeps_memory_committed(self, allocator):
        buffer = allocator.malloc(8 * MB)
        allocator.free(buffer)
        assert allocator._pool.committed == 8 * MB
        assert allocator.cached_bytes == 8 * MB

    def test_free_list_reuse_skips_driver(self, allocator):
        buffer = allocator.malloc(8 * MB)
        allocator.free(buffer)
        t_before = allocator._clock.now
        allocator.malloc(8 * MB)
        # Cache hit: no cudaMalloc latency.
        assert allocator._clock.now == t_before

    def test_double_free_raises(self, allocator):
        buffer = allocator.malloc(2 * MB)
        allocator.free(buffer)
        with pytest.raises(InvalidHandle):
            allocator.free(buffer)

    def test_empty_cache_releases(self, allocator):
        buffer = allocator.malloc(8 * MB)
        allocator.free(buffer)
        freed = allocator.empty_cache()
        assert freed == 8 * MB
        assert allocator._pool.committed == 0


class TestStaticKvMath:
    def test_matches_paper_example(self):
        # Yi-34B-class request: 240KB/token, 200K max context -> a
        # single max-context slot is ~45.8GB of committed memory.
        per_slot = static_kv_cache_bytes(1, 200_000, 240 * KB)
        assert per_slot == 200_000 * 240 * KB

    def test_scales_with_batch(self):
        assert static_kv_cache_bytes(4, 1000, 64 * KB) == (
            4 * static_kv_cache_bytes(1, 1000, 64 * KB)
        )
