"""Exact virtual KV tensor: the materialized validation implementation."""

import pytest

from repro.core.virtual_tensor import VirtualKvTensor, build_kv_tensors
from repro.errors import AccessError, ConfigError, SchedulingError
from repro.gpu.device import Device
from repro.gpu.spec import A100
from repro.units import GB, KB


@pytest.fixture
def tensor(tiny_config) -> VirtualKvTensor:
    device = Device(A100, reserved_bytes=70 * GB)
    return VirtualKvTensor(device, tiny_config)


class TestLayout:
    def test_request_bases_are_strided(self, tensor, tiny_config):
        stride = tiny_config.request_stride
        assert tensor.request_base(0) == 0
        assert tensor.request_base(3) == 3 * stride

    def test_out_of_range_reqid(self, tensor):
        with pytest.raises(SchedulingError):
            tensor.request_base(4)

    def test_reservation_covers_batch(self, tensor, tiny_config):
        assert tensor.reservation.size == tiny_config.buffer_bytes


class TestGrowShrink:
    def test_grow_maps_page_groups(self, tensor, tiny_config):
        new = tensor.grow(0, 100_000)
        expected = tensor.page_groups_for(100_000)
        assert new == expected
        assert tensor.mapped_page_groups(0) == expected
        assert tensor.mapped_bytes(0) >= 100_000

    def test_grow_is_idempotent_at_same_target(self, tensor):
        tensor.grow(1, 64 * KB)
        assert tensor.grow(1, 64 * KB) == 0

    def test_grow_beyond_stride_rejected(self, tensor, tiny_config):
        with pytest.raises(ConfigError):
            tensor.grow(0, tiny_config.request_stride + 1)

    def test_shrink_releases(self, tensor):
        tensor.grow(0, 4 * 64 * KB)
        assert tensor.shrink(0, 2) == 2
        assert tensor.mapped_page_groups(0) == 2

    def test_shrink_clamps(self, tensor):
        tensor.grow(0, 64 * KB)
        assert tensor.shrink(0, 100) == 1

    def test_release_request(self, tensor):
        tensor.grow(2, 3 * 64 * KB)
        assert tensor.release_request(2) == 3
        assert tensor.mapped_page_groups(2) == 0

    def test_requests_are_isolated(self, tensor):
        tensor.grow(0, 64 * KB)
        assert tensor.mapped_page_groups(1) == 0


class TestKernelAccessSimulation:
    def test_backed_tokens_are_readable(self, tensor, tiny_config):
        per_token = tiny_config.bytes_per_token_per_tensor
        tokens = (64 * KB) // per_token
        tensor.grow(0, 64 * KB)
        tensor.check_token_access(0, tokens - 1)
        tensor.check_context_access(0, tokens)

    def test_unbacked_token_faults(self, tensor, tiny_config):
        per_token = tiny_config.bytes_per_token_per_tensor
        tokens = (64 * KB) // per_token
        tensor.grow(0, 64 * KB)
        with pytest.raises(AccessError):
            tensor.check_token_access(0, tokens)

    def test_fresh_request_faults_immediately(self, tensor):
        with pytest.raises(AccessError):
            tensor.check_token_access(3, 0)

    def test_neighbouring_request_not_readable_through_gap(self, tensor):
        # Request 0 fully backed must not make request 1 readable.
        tensor.grow(0, tensor.config.request_stride)
        with pytest.raises(AccessError):
            tensor.check_token_access(1, 0)


class TestDestroy:
    def test_destroy_releases_all(self, tiny_config):
        device = Device(A100, reserved_bytes=70 * GB)
        tensor = VirtualKvTensor(device, tiny_config)
        tensor.grow(0, 128 * KB)
        tensor.grow(3, 64 * KB)
        tensor.destroy()
        assert device.pool.committed == 0
        assert device.va_space.reserved_bytes == 0

    def test_build_many(self, tiny_config):
        device = Device(A100, reserved_bytes=70 * GB)
        tensors = build_kv_tensors(device, tiny_config, count=4)
        assert len(tensors) == 4
        assert device.va_space.reservation_count == 4

    def test_build_rejects_zero(self, tiny_config):
        device = Device(A100, reserved_bytes=70 * GB)
        with pytest.raises(ConfigError):
            build_kv_tensors(device, tiny_config, count=0)
