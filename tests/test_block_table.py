"""Block-Table CPU cost models (PagedAttention's framework overhead)."""

import pytest

from repro.errors import ConfigError
from repro.paged.block_table import (
    FI_APPEND_PER_BLOCK,
    FI_OBJECT_CHURN,
    VLLM_PER_ENTRY,
    block_table_cost,
)


class TestLookup:
    def test_known_libraries(self):
        for library in ("vLLM", "FlashAttention-2", "FlashInfer"):
            assert block_table_cost(library).library == library

    def test_unknown_library_rejected(self):
        with pytest.raises(ConfigError):
            block_table_cost("Triton")


class TestVllmPaddedTable:
    def test_cost_is_max_times_batch(self):
        cost = block_table_cost("vLLM")
        # One long request forces padding for the whole batch (S3.3.2).
        skewed = cost.prepare_seconds([1024, 1, 1, 1])
        assert skewed == pytest.approx(VLLM_PER_ENTRY * 1024 * 4)

    def test_padding_hurts_mixed_batches(self):
        cost = block_table_cost("vLLM")
        uniform = cost.prepare_seconds([256] * 4)
        skewed = cost.prepare_seconds([1024, 1, 1, 1])
        assert skewed > uniform  # same total blocks, worse with padding

    def test_ten_percent_of_decode_iteration(self):
        # Calibration check: batch 32 at 16K context with block 16 is
        # ~2.5ms — roughly 10% of the Table 7 iteration latency.
        cost = block_table_cost("vLLM")
        seconds = cost.prepare_seconds([1024] * 32)
        assert seconds == pytest.approx(2.5e-3, rel=0.05)

    def test_empty_batch_is_free(self):
        assert block_table_cost("vLLM").prepare_seconds([]) == 0.0

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigError):
            block_table_cost("vLLM").prepare_seconds([-1])


class TestCompressedAndSimpleTables:
    def test_fa2_cost_uses_true_totals(self):
        cost = block_table_cost("FlashAttention-2")
        uniform = cost.prepare_seconds([256] * 4)
        skewed = cost.prepare_seconds([1021, 1, 1, 1])
        assert skewed == pytest.approx(uniform)  # no padding effect

    def test_fi_pays_object_churn_every_iteration(self):
        cost = block_table_cost("FlashInfer")
        assert cost.prepare_seconds([1]) >= FI_OBJECT_CHURN

    def test_vattention_needs_none_of_this(self):
        # There is deliberately no entry for a vAttention "library":
        # contiguous KV needs no Block-Table (S3.2).
        with pytest.raises(ConfigError):
            block_table_cost("vAttention")


class TestAppendCosts:
    def test_fi_appends_per_block_per_tensor(self):
        cost = block_table_cost("FlashInfer")
        one_tensor = cost.append_seconds(160, 16, n_tensors=1)
        assert one_tensor == pytest.approx(10 * FI_APPEND_PER_BLOCK)
        all_tensors = cost.append_seconds(160, 16, n_tensors=64)
        assert all_tensors == pytest.approx(64 * one_tensor)

    def test_fi_append_calibration_yi34b_192k(self):
        # Table 6 attributes ~6s of FI_Paged's 192K-prefill gap to
        # non-attention sources for Yi-34B (120 tensors).
        cost = block_table_cost("FlashInfer")
        seconds = cost.append_seconds(196_608, 16, n_tensors=120)
        assert seconds == pytest.approx(5.9, rel=0.05)

    def test_fa2_append_is_free(self):
        # vLLM ships an optimized copy kernel for FA2 (S7.1).
        cost = block_table_cost("FlashAttention-2")
        assert cost.append_seconds(196_608, 256, n_tensors=64) == 0.0

    def test_zero_tokens_free(self):
        cost = block_table_cost("FlashInfer")
        assert cost.append_seconds(0, 16, n_tensors=64) == 0.0
