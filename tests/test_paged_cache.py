"""Radix prefix cache over the paged backend (full-block sharing).

The radix tree is backend-agnostic; these tests pin the paged adapter's
mechanics — per-block refcounts, pointer splicing, block-floored hits —
and prove the cache delivers end-to-end over ``memory_backend="paged"``:
engine hit/miss/eviction behaviour and cache-aware cluster routing.
"""

import pytest

from repro.cache.manager import PrefixCacheManager
from repro.cluster import ClusterConfig, ClusterEngine
from repro.errors import SchedulingError
from repro.experiments.ext_cluster_router import cluster_trace
from repro.gpu.spec import A100
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.paged.block_manager import BlockManager
from repro.serving.engine import EngineConfig, LLMEngine
from repro.units import GB
from repro.workloads.traces import fixed_trace, shared_prefix_trace

BLOCK = 16


# ----------------------------------------------------------------------
# BlockManager sharing primitives
# ----------------------------------------------------------------------
@pytest.fixture
def blocks():
    shard = ShardedModel(YI_6B, 1)
    return BlockManager(
        shard, kv_budget_bytes=64 * BLOCK * shard.kv_bytes_per_token,
        block_size=BLOCK,
    )


class TestBlockSharing:
    def test_share_aliases_and_releases_displaced(self, blocks):
        blocks.allocate("src", 4 * BLOCK)
        blocks.allocate("dst", 4 * BLOCK)
        free_before = blocks.free_blocks
        saved = blocks.share_blocks("src", "dst", 3)
        assert saved == 3 * blocks.block_bytes
        # dst's three displaced private blocks went back to the pool.
        assert blocks.free_blocks == free_before + 3
        assert (
            blocks.allocation("dst").block_ids[:3]
            == blocks.allocation("src").block_ids[:3]
        )
        assert blocks.dedup_saved_bytes == 3 * blocks.block_bytes

    def test_shared_blocks_survive_source_free(self, blocks):
        blocks.allocate("src", 4 * BLOCK)
        blocks.allocate("dst", 4 * BLOCK)
        shared = blocks.allocation("src").block_ids[:3]
        blocks.share_blocks("src", "dst", 3)
        blocks.free("src")
        # The aliased blocks stay out of the pool while dst holds them.
        assert not set(shared) & set(blocks._free)
        assert blocks.dedup_saved_bytes == 0  # dst is sole owner again
        blocks.free("dst")
        assert blocks.free_blocks == blocks.num_blocks

    def test_refcount_chain_three_way(self, blocks):
        blocks.allocate("a", 2 * BLOCK)
        blocks.allocate("b", 2 * BLOCK)
        blocks.allocate("c", 2 * BLOCK)
        blocks.share_blocks("a", "b", 2)
        blocks.share_blocks("a", "c", 2)
        assert blocks.dedup_saved_bytes == 4 * blocks.block_bytes
        blocks.free("a")
        blocks.free("b")
        assert blocks.dedup_saved_bytes == 0
        blocks.free("c")
        assert blocks.free_blocks == blocks.num_blocks

    def test_share_rejects_more_than_held(self, blocks):
        blocks.allocate("src", 2 * BLOCK)
        blocks.allocate("dst", 4 * BLOCK)
        with pytest.raises(SchedulingError):
            blocks.share_blocks("src", "dst", 3)

    def test_transfer_rekeys_and_trims(self, blocks):
        blocks.allocate("req", 4 * BLOCK + 5)  # 5 allocated blocks
        moved = blocks.transfer("req", "prefix-cache/0", 3 * BLOCK)
        assert moved.request_id == "prefix-cache/0"
        assert moved.num_blocks == 3
        assert moved.context_len == 3 * BLOCK
        assert blocks.free_blocks == blocks.num_blocks - 3
        with pytest.raises(SchedulingError):
            blocks.allocation("req")

    def test_transfer_requires_block_multiple(self, blocks):
        blocks.allocate("req", 4 * BLOCK)
        with pytest.raises(SchedulingError, match="whole blocks"):
            blocks.transfer("req", "cache", 3 * BLOCK + 1)

    def test_free_order_unchanged_without_sharing(self, blocks):
        # The pre-sharing free-list discipline (allocate from the tail,
        # bulk-return in list order) is what catalogue determinism
        # rests on; refcounting must not disturb it.
        a = blocks.allocate("a", 3 * BLOCK).block_ids[:]
        blocks.free("a")
        assert blocks._free[-3:] == a
        # Re-allocation pops the free tail back to front, as ever.
        b = blocks.allocate("b", 3 * BLOCK).block_ids
        assert b == a[::-1]


# ----------------------------------------------------------------------
# Engine-level cache over paged
# ----------------------------------------------------------------------
def build_engine(enabled: bool = True, **overrides) -> LLMEngine:
    config = dict(
        shard=ShardedModel(YI_6B, 1),
        gpu=A100,
        memory_backend="paged",
        prefill_kernel="fa2",  # the vLLM system shape (see common.py)
        decode_kernel="vllm_paged",
        max_batch_size=8,
        enable_prefix_cache=enabled,
    )
    config.update(overrides)
    return LLMEngine(EngineConfig(**config))


def serve(engine: LLMEngine, trace):
    engine.submit(trace)
    report = engine.run()
    ttfts = [r.ttft for r in report.finished_requests]
    return report, sum(ttfts) / len(ttfts)


class TestPagedEngineCache:
    def test_engine_wraps_paged_backend(self):
        engine = build_engine(True)
        backend = getattr(engine.memory, "backend", engine.memory)
        assert isinstance(backend, PrefixCacheManager)

    def test_shared_prompts_hit_and_win(self):
        def trace():
            return shared_prefix_trace(
                count=24, sharing_factor=8, prefix_tokens=8_192
            )

        report_off, ttft_off = serve(build_engine(False), trace())
        report_on, ttft_on = serve(build_engine(True), trace())
        cache = report_on.prefix_cache
        assert len(report_on.finished_requests) == 24
        assert cache.lookups == 24
        assert cache.hits > 0
        assert cache.bytes_saved > 0
        assert cache.retained > 0
        assert ttft_on < ttft_off

    def test_hits_floor_to_full_blocks(self):
        report, _ = serve(
            build_engine(True),
            shared_prefix_trace(count=16, sharing_factor=8,
                                prefix_tokens=8_192),
        )
        cache = report.prefix_cache
        assert cache.hit_tokens > 0
        assert cache.hit_tokens % BLOCK == 0

    def test_probe_matches_hit_size(self):
        # The routing probe and the actual hit go through the same
        # block floor — a probe must never promise tokens a hit cannot
        # deliver.
        engine = build_engine(True)
        trace = shared_prefix_trace(count=8, sharing_factor=8,
                                    prefix_tokens=4_096)
        engine.submit(trace[:4])
        engine.run()
        probe = engine.memory.probe_prefix_tokens(
            trace[4].prefix.token_ids, limit=trace[4].prompt_len - 1
        )
        assert probe > 0
        assert probe % BLOCK == 0
        engine.submit(trace[4:])
        report = engine.run()
        assert report.prefix_cache.hits > 0

    def test_no_sharing_no_hits_no_harm(self):
        def trace():
            return shared_prefix_trace(
                count=16, sharing_factor=1, prefix_tokens=2_048
            )

        report_off, _ = serve(build_engine(False), trace())
        report_on, _ = serve(build_engine(True), trace())
        assert report_on.prefix_cache.hits == 0
        assert report_on.makespan == pytest.approx(
            report_off.makespan, rel=1e-6
        )

    def test_requests_without_descriptors_run_unchanged(self):
        def trace():
            return fixed_trace(count=6, prompt_len=4_096, max_new_tokens=32)

        report_off, _ = serve(build_engine(False), trace())
        report_on, _ = serve(build_engine(True), trace())
        assert report_on.prefix_cache.lookups == 0
        assert report_on.makespan == pytest.approx(
            report_off.makespan, rel=1e-6
        )

    def test_budget_bounds_retained_bytes(self):
        budget = 2 * GB
        report, _ = serve(
            build_engine(True, prefix_cache_budget_bytes=budget),
            shared_prefix_trace(count=24, sharing_factor=4,
                                prefix_tokens=8_192),
        )
        cache = report.prefix_cache
        assert cache.cached_bytes <= budget
        assert cache.evictions > 0

    def test_memory_pressure_evicts_instead_of_starving(self):
        # Tighter than the vattention twin: block sharing de-duplicates
        # the pool's physical footprint, so real pressure needs a
        # budget under the sum of the distinct prefix groups.
        report, _ = serve(
            build_engine(True, kv_budget_bytes=2 * GB, max_batch_size=3),
            shared_prefix_trace(count=12, sharing_factor=4,
                                prefix_tokens=8_192),
        )
        assert len(report.finished_requests) == 12
        assert report.prefix_cache.evictions > 0
        assert report.prefix_cache.hits > 0

    def test_dedup_bytes_released_after_run(self):
        engine = build_engine(True)
        engine.submit(
            shared_prefix_trace(count=16, sharing_factor=8,
                                prefix_tokens=8_192)
        )
        report = engine.run()
        assert report.prefix_cache.bytes_saved > 0
        # Cumulative savings survive in the report while the pool's
        # live dedup drains as requests finish (retained cache entries
        # no longer alias into any live request).
        assert engine.memory.report().bytes_saved > 0


# ----------------------------------------------------------------------
# Cache-aware routing over paged replicas
# ----------------------------------------------------------------------
class TestCacheAwareRoutingOverPaged:
    def _serve(self, policy: str):
        cluster = ClusterEngine(
            ClusterConfig(
                engine=EngineConfig(
                    shard=ShardedModel(YI_6B, 1),
                    gpu=A100,
                    memory_backend="paged",
                    prefill_kernel="fa2",
                    decode_kernel="vllm_paged",
                    max_batch_size=8,
                    enable_prefix_cache=True,
                ),
                n_replicas=2,
                routing_policy=policy,
            )
        )
        cluster.submit(cluster_trace(count=24, sharing_factor=4, qps=8.0))
        return cluster.run()

    def test_cache_aware_hits_over_paged(self):
        report = self._serve("cache_aware")
        assert len(report.records) == 24
        assert report.cache_hit_rate > 0

    def test_cache_aware_beats_round_robin_hit_rate(self):
        aware = self._serve("cache_aware")
        blind = self._serve("round_robin")
        assert aware.cache_hit_rate > blind.cache_hit_rate
