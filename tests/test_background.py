"""Background allocation worker: overlap, spill and priorities."""

import pytest

from repro.core.background import BackgroundWorker


class TestSubmitAndRun:
    def test_submit_accumulates(self):
        worker = BackgroundWorker()
        worker.submit(0.002)
        worker.submit(0.003)
        assert worker.pending_seconds == pytest.approx(0.005)

    def test_run_consumes_up_to_window(self):
        worker = BackgroundWorker()
        worker.submit(0.005)
        done = worker.run_for(0.002)
        assert done == pytest.approx(0.002)
        assert worker.pending_seconds == pytest.approx(0.003)

    def test_run_with_surplus_window(self):
        worker = BackgroundWorker()
        worker.submit(0.001)
        assert worker.run_for(1.0) == pytest.approx(0.001)
        assert worker.pending_seconds == 0.0

    def test_rejects_negative(self):
        worker = BackgroundWorker()
        with pytest.raises(ValueError):
            worker.submit(-1)
        with pytest.raises(ValueError):
            worker.run_for(-1)


class TestPriorities:
    def test_critical_runs_first(self):
        worker = BackgroundWorker()
        worker.submit(0.004, critical=False)
        worker.submit(0.002, critical=True)
        worker.run_for(0.002)
        assert worker.critical_pending == 0.0
        assert worker.opportunistic_pending == pytest.approx(0.004)

    def test_flush_only_touches_critical(self):
        worker = BackgroundWorker()
        worker.submit(0.002, critical=True)
        worker.submit(0.004, critical=False)
        spilled = worker.flush_critical()
        assert spilled == pytest.approx(0.002)
        assert worker.opportunistic_pending == pytest.approx(0.004)

    def test_opportunistic_fills_leftover_window(self):
        worker = BackgroundWorker()
        worker.submit(0.001, critical=True)
        worker.submit(0.002, critical=False)
        done = worker.run_for(0.002)
        assert done == pytest.approx(0.002)
        assert worker.opportunistic_pending == pytest.approx(0.001)


class TestAccounting:
    def test_hidden_fraction_all_overlapped(self):
        worker = BackgroundWorker()
        worker.submit(0.002)
        worker.run_for(0.01)
        assert worker.hidden_fraction == pytest.approx(1.0)

    def test_hidden_fraction_all_spilled(self):
        worker = BackgroundWorker()
        worker.submit(0.002)
        worker.flush_critical()
        assert worker.hidden_fraction == 0.0
        assert worker.spilled_seconds == pytest.approx(0.002)

    def test_empty_worker_fully_hidden(self):
        assert BackgroundWorker().hidden_fraction == 1.0

    def test_lifetime_counters(self):
        worker = BackgroundWorker()
        worker.submit(0.004)
        worker.run_for(0.003)
        worker.flush_critical()
        assert worker.overlapped_seconds == pytest.approx(0.003)
        assert worker.spilled_seconds == pytest.approx(0.001)
        assert worker.submitted_seconds == pytest.approx(0.004)
