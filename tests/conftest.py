"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import VAttentionConfig
from repro.gpu.device import Device
from repro.gpu.spec import A100
from repro.models.config import ModelConfig
from repro.models.shard import ShardedModel
from repro.models.zoo import LLAMA3_8B, YI_34B, YI_6B
from repro.units import GB


@pytest.fixture
def device() -> Device:
    """A fresh A100 with 20GB reserved for weights/workspace."""
    return Device(A100, reserved_bytes=20 * GB)


@pytest.fixture
def small_device() -> Device:
    """A tiny device for out-of-memory paths (2GB of KV budget)."""
    return Device(A100, reserved_bytes=78 * GB)


@pytest.fixture
def yi6b_shard() -> ShardedModel:
    """Yi-6B at the paper's TP-1 deployment."""
    return ShardedModel(YI_6B, tp_degree=1)


@pytest.fixture
def llama3_shard() -> ShardedModel:
    """Llama-3-8B at the paper's TP-2 deployment."""
    return ShardedModel(LLAMA3_8B, tp_degree=2)


@pytest.fixture
def yi34b_shard() -> ShardedModel:
    """Yi-34B at the paper's TP-2 deployment."""
    return ShardedModel(YI_34B, tp_degree=2)


@pytest.fixture
def tiny_model() -> ModelConfig:
    """A small model so exact virtual tensors stay cheap in tests."""
    return ModelConfig(
        name="tiny",
        n_layers=2,
        n_q_heads=4,
        n_kv_heads=2,
        head_dim=64,
        hidden_size=256,
        intermediate_size=512,
        vocab_size=1000,
        max_context=8_192,
    )


@pytest.fixture
def tiny_shard(tiny_model: ModelConfig) -> ShardedModel:
    """The tiny model on one worker."""
    return ShardedModel(tiny_model, tp_degree=1)


@pytest.fixture
def tiny_config(tiny_shard: ShardedModel) -> VAttentionConfig:
    """A small vAttention configuration (64KB page-groups, batch 4)."""
    return VAttentionConfig(
        shard=tiny_shard,
        max_batch_size=4,
        page_group_size=64 * 1024,
    )
