"""The MemoryManager facade: equivalence, config nesting, swap shim.

Three layers of enforcement mirroring the fast-forward house standard:

* An on/off sweep over every engine-driven experiment in the catalogue
  (plus one cluster shape): each driver runs once with the facade and
  once with the raw backend wiring (flipped through the module
  default), and the experiment's own output rows must compare equal —
  floats included, no tolerance. ``ext-kv-tiering`` is deliberately
  absent: its ``tiered`` mode only exists through the facade, so it
  has no legacy twin to compare against.
* ``EngineConfig`` memory knobs spelled flat (deprecated aliases) and
  nested (``memory=MemoryConfig(...)``) must normalize to the same
  config and serve identically.
* The ``SwapManager`` shim must warn exactly once per construction and
  keep byte-identical accounting with :class:`repro.memory.CpuKvTier`.
"""

import warnings

import pytest

import repro.memory.config as memory_config_module
from repro.errors import ConfigError, SchedulingError
from repro.gpu.spec import A100
from repro.memory import CpuKvTier, MemoryConfig, MemoryManager
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.serving.engine import EngineConfig, LLMEngine
from repro.serving.swap import HostSwapSpace, SwapManager
from repro.units import GB
from repro.workloads.traces import fixed_trace
from test_fastforward_equiv import CLUSTER_SWEEP, SWEEP, _cluster_fingerprint


# ----------------------------------------------------------------------
# The facade on/off catalogue sweep
# ----------------------------------------------------------------------
class TestFacadeEquivalence:
    @pytest.mark.parametrize("name", sorted(SWEEP))
    def test_identical_on_and_off(self, name, monkeypatch):
        monkeypatch.setattr(
            memory_config_module, "DEFAULT_MEMORY_FACADE", True
        )
        on = SWEEP[name]()
        monkeypatch.setattr(
            memory_config_module, "DEFAULT_MEMORY_FACADE", False
        )
        off = SWEEP[name]()
        assert on == off

    @pytest.mark.parametrize(
        "name", ["router:cache_aware", "disagg:nvlink"]
    )
    def test_cluster_identical_on_and_off(self, name, monkeypatch):
        # Cluster KV paths (router probes, migration, drain re-routing)
        # go through every replica's engine.memory; one routed and one
        # disaggregated shape cover them.
        monkeypatch.setattr(
            memory_config_module, "DEFAULT_MEMORY_FACADE", True
        )
        on = _cluster_fingerprint(CLUSTER_SWEEP[name]())
        monkeypatch.setattr(
            memory_config_module, "DEFAULT_MEMORY_FACADE", False
        )
        off = _cluster_fingerprint(CLUSTER_SWEEP[name]())
        assert on == off

    def test_default_is_facade(self):
        engine = _engine()
        assert isinstance(engine.memory, MemoryManager)

    def test_flag_off_builds_raw_backend(self, monkeypatch):
        monkeypatch.setattr(
            memory_config_module, "DEFAULT_MEMORY_FACADE", False
        )
        engine = _engine()
        assert not isinstance(engine.memory, MemoryManager)


# ----------------------------------------------------------------------
# EngineConfig memory-knob normalization
# ----------------------------------------------------------------------
def _shard():
    return ShardedModel(YI_6B, 1)


def _engine(**overrides) -> LLMEngine:
    config = dict(
        shard=_shard(),
        gpu=A100,
        memory_backend="vattention",
        max_batch_size=4,
    )
    config.update(overrides)
    return LLMEngine(EngineConfig(**config))


def _swap_workload(engine: LLMEngine):
    prompt_len = 8_192
    engine.submit(
        fixed_trace(count=3, prompt_len=prompt_len, max_new_tokens=300)
    )
    return engine.run()


def _pressured(**overrides) -> LLMEngine:
    # Budget holding 3 prompts at one-row slack: decode growth preempts.
    shard = _shard()
    budget = int(3 * 8_192 * shard.kv_bytes_per_token * 1.02)
    return _engine(
        kv_budget_bytes=budget, eager_allocation=False, **overrides
    )


class TestMemoryConfig:
    def test_both_spellings_normalize_identically(self):
        flat = EngineConfig(
            shard=_shard(), gpu=A100, memory_backend="vattention",
            preemption_mode="swap", swap_host_bytes=2 * GB,
        )
        nested = EngineConfig(
            shard=_shard(), gpu=A100, memory_backend="vattention",
            memory=MemoryConfig(
                preemption_mode="swap", swap_host_bytes=2 * GB
            ),
        )
        assert flat.memory == nested.memory
        assert flat.preemption_mode == nested.preemption_mode == "swap"
        assert flat.swap_host_bytes == nested.swap_host_bytes == 2 * GB

    def test_both_spellings_serve_identically(self):
        report_flat = _swap_workload(
            _pressured(preemption_mode="swap", swap_host_bytes=4 * GB)
        )
        report_nested = _swap_workload(
            _pressured(memory=MemoryConfig(
                preemption_mode="swap", swap_host_bytes=4 * GB
            ))
        )
        assert report_flat.to_json() == report_nested.to_json()

    def test_flat_alias_wins_over_nested(self):
        # dataclasses.replace(config, preemption_mode=...) on a
        # normalized config must take effect; the passed flat value
        # always wins.
        config = EngineConfig(
            shard=_shard(), gpu=A100, memory_backend="vattention",
            memory=MemoryConfig(preemption_mode="swap"),
            preemption_mode="recompute",
        )
        assert config.preemption_mode == "recompute"
        assert config.memory.preemption_mode == "recompute"

    def test_aliases_backfilled_from_nested(self):
        config = EngineConfig(
            shard=_shard(), gpu=A100, memory_backend="vattention",
            memory=MemoryConfig(preemption_mode="tiered",
                                swap_host_bytes=3 * GB),
        )
        assert config.preemption_mode == "tiered"
        assert config.swap_host_bytes == 3 * GB

    def test_unknown_mode_rejected_both_spellings(self):
        with pytest.raises(ConfigError, match="unknown preemption mode"):
            MemoryConfig(preemption_mode="bogus")
        with pytest.raises(ConfigError, match="unknown preemption mode"):
            EngineConfig(
                shard=_shard(), gpu=A100, memory_backend="vattention",
                preemption_mode="bogus",
            )

    def test_swap_bytes_validated(self):
        with pytest.raises(ConfigError, match="swap_host_bytes"):
            MemoryConfig(swap_host_bytes=0)

    def test_cache_knobs_validated_in_nested_config(self):
        with pytest.raises(ConfigError, match="prefix_cache_slots"):
            MemoryConfig(enable_prefix_cache=True, prefix_cache_slots=0)
        with pytest.raises(ConfigError, match="prefix_cache_budget_bytes"):
            MemoryConfig(
                enable_prefix_cache=True, prefix_cache_budget_bytes=-1
            )


# ----------------------------------------------------------------------
# The SwapManager deprecation shim
# ----------------------------------------------------------------------
def _drive(space) -> None:
    space.swap_out("a", 256)
    space.swap_out("b", 512)
    space.can_swap_out(space.capacity)  # rejected: counter must tick
    space.swap_in("a")
    space.drop("b")


class TestSwapShim:
    def test_swap_manager_warns(self):
        with pytest.warns(DeprecationWarning, match="SwapManager"):
            SwapManager(capacity=1 * GB)

    def test_host_swap_space_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            HostSwapSpace(capacity=1 * GB)

    def test_shim_accounting_identical(self):
        with pytest.warns(DeprecationWarning):
            shim = SwapManager(capacity=1 * GB)
        tier = CpuKvTier(capacity=1 * GB)
        _drive(shim)
        _drive(tier)
        assert shim.stats == tier.stats
        assert shim.used == tier.used
        assert shim.available == tier.available
        assert shim.telemetry_sample() == tier.telemetry_sample()

    def test_shim_is_a_tier(self):
        with pytest.warns(DeprecationWarning):
            shim = SwapManager(capacity=1 * GB)
        assert isinstance(shim, CpuKvTier)


# ----------------------------------------------------------------------
# Facade API surface
# ----------------------------------------------------------------------
class TestFacadeApi:
    def test_facade_shares_tier_with_engine(self):
        engine = _engine(preemption_mode="tiered")
        assert engine.memory.tier is engine.swap_space
        assert isinstance(engine.swap_space, CpuKvTier)

    def test_recompute_mode_has_no_tier(self):
        engine = _engine(preemption_mode="recompute")
        assert engine.memory.tier is None
        assert engine.swap_space is None

    def test_tier_transfer_requires_tier(self):
        engine = _engine(preemption_mode="recompute")
        with pytest.raises(ValueError, match="no CPU tier"):
            engine.memory.tier_transfer("r", "out", nbytes=1)

    def test_tier_transfer_rejects_unknown_direction(self):
        engine = _engine(preemption_mode="tiered")
        with pytest.raises(ValueError, match="direction"):
            engine.memory.tier_transfer("r", "sideways", nbytes=1)

    def test_tier_transfer_round_trip(self):
        engine = _engine(preemption_mode="tiered")
        out = engine.memory.tier_transfer("r", "out", nbytes=1_000)
        assert out.nbytes == 1_000 and out.seconds > 0
        back = engine.memory.tier_transfer("r", "in")
        assert back.nbytes == 1_000
        assert back.seconds == out.seconds
        assert not engine.swap_space.holds("r")

    def test_double_swap_out_rejected(self):
        engine = _engine(preemption_mode="tiered")
        engine.memory.tier_transfer("r", "out", nbytes=1_000)
        with pytest.raises(SchedulingError):
            engine.memory.tier_transfer("r", "out", nbytes=1_000)

    def test_delegates_backend_extras(self):
        engine = _engine(preemption_mode="tiered")
        # vattention-specific introspection flows through __getattr__.
        assert engine.memory.manager is engine.memory.backend.manager

    def test_telemetry_sample_merges_tier_gauges(self):
        engine = _engine(preemption_mode="tiered")
        sample = engine.memory.telemetry_sample()
        assert sample["kv_tier_usage"] == 0.0
        assert sample["tier_transfer_queue_depth"] == 0.0
        assert "tier_bytes_out_total" in sample

    def test_no_tier_no_tier_gauges(self):
        engine = _engine(preemption_mode="recompute")
        sample = engine.memory.telemetry_sample()
        assert "kv_tier_usage" not in sample
