"""Extended driver (vMem*) semantics across page-group sizes."""

import pytest

from repro.errors import ConfigError
from repro.gpu.device import Device
from repro.gpu.spec import A100, SUPPORTED_PAGE_GROUP_SIZES
from repro.units import KB, MB, us


@pytest.fixture
def device() -> Device:
    return Device(A100, reserved_bytes=0)


class TestConstruction:
    @pytest.mark.parametrize("size", SUPPORTED_PAGE_GROUP_SIZES)
    def test_supported_sizes(self, device, size):
        assert device.driver(size).page_group_size == size

    def test_unsupported_size_rejected(self, device):
        with pytest.raises(ConfigError):
            device.driver(4 * KB)
        with pytest.raises(ConfigError):
            device.driver(1 * MB)


class TestSmallPageFlow:
    def test_reserve_create_map(self, device):
        driver = device.driver(64 * KB)
        reservation = driver.v_mem_reserve(1 * MB)
        handle = driver.v_mem_create()
        driver.v_mem_map(reservation, 0, handle)
        assert reservation.is_range_backed(0, 64 * KB)

    def test_map_latency_is_table3(self, device):
        driver = device.driver(64 * KB)
        reservation = driver.v_mem_reserve(1 * MB)
        handle = driver.v_mem_create()
        before = device.clock.now
        driver.v_mem_map(reservation, 0, handle)
        assert device.clock.now - before == pytest.approx(us(8))

    def test_release_combines_unmap_and_free(self, device):
        driver = device.driver(64 * KB)
        reservation = driver.v_mem_reserve(1 * MB)
        handle = driver.v_mem_create()
        driver.v_mem_map(reservation, 0, handle)
        driver.v_mem_release(reservation, 0)
        assert device.pool.committed == 0
        assert reservation.mapped_bytes == 0

    def test_unaligned_reserve_rejected(self, device):
        driver = device.driver(64 * KB)
        with pytest.raises(ConfigError):
            driver.v_mem_reserve(64 * KB + 1)

    def test_wrong_handle_size_rejected(self, device):
        driver64 = device.driver(64 * KB)
        driver128 = device.driver(128 * KB)
        reservation = driver64.v_mem_reserve(1 * MB)
        foreign = driver128.v_mem_create()
        with pytest.raises(ConfigError):
            driver64.v_mem_map(reservation, 0, foreign)


class Test2MbDelegation:
    def test_map_charges_map_plus_set_access(self, device):
        driver = device.driver(2 * MB)
        reservation = driver.v_mem_reserve(8 * MB)
        handle = driver.v_mem_create()
        before = device.clock.now
        driver.v_mem_map(reservation, 0, handle)
        assert device.clock.now - before == pytest.approx(us(2 + 38))
        assert driver.stats.set_access == 1

    def test_release_charges_unmap_plus_release(self, device):
        driver = device.driver(2 * MB)
        reservation = driver.v_mem_reserve(8 * MB)
        handle = driver.v_mem_create()
        driver.v_mem_map(reservation, 0, handle)
        before = device.clock.now
        driver.v_mem_release(reservation, 0)
        assert device.clock.now - before == pytest.approx(us(34 + 23))

    def test_map_cost_property(self, device):
        assert device.driver(2 * MB).map_cost_seconds == pytest.approx(
            us(29 + 2 + 38)
        )
        assert device.driver(64 * KB).map_cost_seconds == pytest.approx(
            us(1.7 + 8)
        )


class TestFullTensorLifecycle:
    def test_grow_shrink_free(self, device):
        driver = device.driver(256 * KB)
        reservation = driver.v_mem_reserve(4 * MB)
        handles = []
        for index in range(4):
            handle = driver.v_mem_create()
            driver.v_mem_map(reservation, index * 256 * KB, handle)
            handles.append(handle)
        assert reservation.mapped_bytes == 1 * MB
        for index in range(4):
            driver.v_mem_release(reservation, index * 256 * KB)
        driver.v_mem_free(reservation)
        assert device.pool.committed == 0
        assert device.va_space.reserved_bytes == 0

    def test_charge_to_defers_latency(self, device):
        driver = device.driver(64 * KB)
        reservation = driver.v_mem_reserve(1 * MB)
        bucket = []
        before = device.clock.now
        with driver.charge_to(bucket.append):
            handle = driver.v_mem_create()
            driver.v_mem_map(reservation, 0, handle)
        assert device.clock.now == before
        assert sum(bucket) == pytest.approx(us(1.7 + 8))
