"""Property-based tests (hypothesis) on core data structures."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import VAttentionConfig
from repro.core.vattention import VAttention
from repro.core.virtual_tensor import VirtualKvTensor
from repro.errors import OutOfPhysicalMemory
from repro.gpu.device import Device
from repro.gpu.phys import PhysicalMemoryPool
from repro.gpu.spec import A100
from repro.gpu.virtual import VirtualAddressSpace
from repro.metrics.stats import cdf_points, percentile
from repro.models.config import ModelConfig
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.paged.block_manager import BlockManager
from repro.units import GB, KB, MB, ceil_div

# Generous deadline: the device constructor pre-creates handles.
RELAXED = settings(
    deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=30
)


class TestPoolProperties:
    @RELAXED
    @given(sizes=st.lists(st.integers(1, 64 * MB), min_size=1, max_size=50))
    def test_committed_equals_sum_of_live_handles(self, sizes):
        pool = PhysicalMemoryPool(capacity=8 * GB)
        handles = []
        for size in sizes:
            try:
                handles.append(pool.allocate(size))
            except OutOfPhysicalMemory:
                break
        assert pool.committed == sum(h.size for h in handles)
        for handle in handles:
            pool.release(handle)
        assert pool.committed == 0
        assert pool.available == pool.capacity

    @RELAXED
    @given(
        sizes=st.lists(st.integers(1, 16 * MB), min_size=1, max_size=40),
        release_mask=st.lists(st.booleans(), min_size=40, max_size=40),
    )
    def test_interleaved_alloc_release_never_overcommits(
        self, sizes, release_mask
    ):
        pool = PhysicalMemoryPool(capacity=256 * MB)
        live = []
        for size, release_first in zip(sizes, release_mask):
            if release_first and live:
                pool.release(live.pop())
            try:
                live.append(pool.allocate(size))
            except OutOfPhysicalMemory:
                pass
            assert 0 <= pool.committed <= pool.capacity
            assert pool.high_water_mark >= pool.committed


class TestReservationProperties:
    @RELAXED
    @given(
        page_indices=st.lists(
            st.integers(0, 63), min_size=1, max_size=64, unique=True
        )
    )
    def test_mapped_bytes_equals_pages_mapped(self, page_indices):
        pool = PhysicalMemoryPool(capacity=1 * GB)
        space = VirtualAddressSpace(size=16 * GB)
        reservation = space.reserve(64 * 2 * MB)
        for index in page_indices:
            reservation.map(index * 2 * MB, pool.allocate(2 * MB))
        assert reservation.mapped_bytes == len(page_indices) * 2 * MB
        # Coverage from 0 equals the length of the leading dense run.
        dense = 0
        present = set(page_indices)
        while dense in present:
            dense += 1
        assert reservation.mapped_extent_from(0) == dense * 2 * MB

    @RELAXED
    @given(
        page_indices=st.lists(
            st.integers(0, 31), min_size=1, max_size=32, unique=True
        )
    )
    def test_unmap_restores_clean_state(self, page_indices):
        pool = PhysicalMemoryPool(capacity=1 * GB)
        space = VirtualAddressSpace(size=16 * GB)
        reservation = space.reserve(32 * 2 * MB)
        for index in page_indices:
            reservation.map(index * 2 * MB, pool.allocate(2 * MB))
        for index in page_indices:
            pool.release(reservation.unmap(index * 2 * MB).handle)
        assert reservation.mapped_bytes == 0
        assert pool.committed == 0


class TestBlockManagerProperties:
    @RELAXED
    @given(
        lengths=st.lists(st.integers(1, 5_000), min_size=1, max_size=30)
    )
    def test_fragmentation_bounded_by_one_block_per_request(self, lengths):
        shard = ShardedModel(YI_6B, 1)
        manager = BlockManager(shard, 4 * GB, block_size=16)
        admitted = 0
        for i, length in enumerate(lengths):
            if not manager.can_allocate(length):
                continue
            manager.allocate(f"r{i}", length)
            admitted += 1
        waste = manager.internal_fragmentation_bytes()
        assert waste <= admitted * manager.block_bytes
        assert waste >= 0

    @RELAXED
    @given(
        lengths=st.lists(st.integers(1, 2_000), min_size=1, max_size=20),
        growth=st.integers(1, 500),
    )
    def test_block_count_always_matches_context(self, lengths, growth):
        shard = ShardedModel(YI_6B, 1)
        manager = BlockManager(shard, 4 * GB, block_size=16)
        for i, length in enumerate(lengths):
            manager.allocate(f"r{i}", length)
            manager.extend(f"r{i}", length + growth)
            allocation = manager.allocation(f"r{i}")
            assert allocation.num_blocks == ceil_div(length + growth, 16)
        total_used = sum(
            manager.allocation(f"r{i}").num_blocks for i in range(len(lengths))
        )
        assert manager.used_blocks == total_used


class TestStatsProperties:
    @RELAXED
    @given(values=st.lists(st.floats(0, 1e6), min_size=1, max_size=200))
    def test_percentile_within_range(self, values):
        assert min(values) <= percentile(values, 50) <= max(values)
        assert percentile(values, 0) == min(values)
        assert percentile(values, 100) == max(values)

    @RELAXED
    @given(values=st.lists(st.floats(0, 1e6), min_size=1, max_size=200))
    def test_cdf_is_monotone_and_complete(self, values):
        points = cdf_points(values)
        fractions = [f for _, f in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)
        assert len(points) == len(values)


def _tiny_shard() -> ShardedModel:
    model = ModelConfig(
        name="prop-tiny",
        n_layers=2,
        n_q_heads=2,
        n_kv_heads=2,
        head_dim=64,
        hidden_size=128,
        intermediate_size=256,
        vocab_size=512,
        max_context=4_096,
    )
    return ShardedModel(model, 1)


class TestManagerCrossValidation:
    """The row-based VAttention accounting must agree with the exact,
    fully materialized VirtualKvTensor on any growth schedule."""

    @RELAXED
    @given(
        contexts=st.lists(st.integers(1, 4_096), min_size=1, max_size=12)
    )
    def test_rows_match_exact_page_group_counts(self, contexts):
        shard = _tiny_shard()
        config = VAttentionConfig(
            shard=shard,
            max_batch_size=2,
            page_group_size=64 * KB,
            eager_allocation=False,
            overlap_allocation=False,
        )
        manager_device = Device(A100, reserved_bytes=79 * GB)
        manager = VAttention(manager_device, config)
        exact_device = Device(A100, reserved_bytes=79 * GB)
        exact = VirtualKvTensor(exact_device, config)

        req = manager.alloc_reqid()
        contexts = sorted(contexts)  # contexts only grow
        for ctx in contexts:
            seq = [0, 0]
            seq[req] = ctx
            assert manager.step(seq) == 0
            exact.grow(req, ctx * config.bytes_per_token_per_tensor)
            assert manager.slots[req].mapped_rows == (
                exact.mapped_page_groups(req)
            )
            # Exact tensor must be readable over the whole context —
            # i.e. the manager's row count implies no faults.
            exact.check_context_access(req, ctx)

    @RELAXED
    @given(
        contexts=st.lists(st.integers(1, 4_096), min_size=1, max_size=10)
    )
    def test_pool_commitment_matches_row_math(self, contexts):
        shard = _tiny_shard()
        config = VAttentionConfig(
            shard=shard,
            max_batch_size=2,
            page_group_size=64 * KB,
            eager_allocation=False,
            overlap_allocation=False,
            deferred_reclamation=False,
        )
        device = Device(A100, reserved_bytes=79 * GB)
        manager = VAttention(device, config)
        req = manager.alloc_reqid()
        peak = 0
        for ctx in sorted(contexts):
            seq = [0, 0]
            seq[req] = ctx
            manager.step(seq)
            peak = ctx
        expected_rows = config.rows_for_context(peak)
        assert manager.slots[req].mapped_rows == expected_rows
        assert manager.mapped_bytes == expected_rows * config.row_bytes
        manager.free_reqid(req)
        assert manager.mapped_bytes == 0  # reclamation disabled -> unmapped
