"""Memory backends: vAttention / Paged / Static behind the engine API."""

import pytest

from repro.core.config import VAttentionConfig
from repro.errors import ConfigError, SchedulingError
from repro.gpu.device import Device
from repro.gpu.spec import A100
from repro.kernels.base import KvLayout
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.serving.memory import PagedMemory, StaticMemory, VAttentionMemory
from repro.serving.request import Request, RequestState
from repro.units import GB, MB


def make_request(rid: str, prompt: int, decode: int = 10) -> Request:
    request = Request(request_id=rid, prompt_len=prompt, max_new_tokens=decode)
    request.state = RequestState.RUNNING
    return request


@pytest.fixture
def shard():
    return ShardedModel(YI_6B, 1)


@pytest.fixture
def device():
    return Device(A100, reserved_bytes=64 * GB)  # 16GB KV budget


class TestVAttentionBackend:
    @pytest.fixture
    def backend(self, device, shard):
        config = VAttentionConfig(
            shard=shard, max_batch_size=4, page_group_size=2 * MB
        )
        return VAttentionMemory(device, config)

    def test_layout(self, backend):
        assert backend.layout is KvLayout.CONTIGUOUS

    def test_admit_assigns_reqid(self, backend):
        request = make_request("r1", 1000)
        assert backend.can_admit(request)
        backend.admit(request)
        assert request.memory_handle is not None

    def test_prefill_then_decode_flow(self, backend):
        request = make_request("r1", 5000)
        backend.admit(request)
        assert backend.prepare_iteration([request])
        request.record_prefill(now=0.0)
        assert backend.prepare_iteration([request])
        backend.after_iteration(0.02)
        backend.release(request)
        assert request.memory_handle is None

    def test_no_framework_overhead(self, backend):
        # No Block-Table: the whole point of virtual contiguity.
        request = make_request("r1", 1000)
        backend.admit(request)
        assert backend.framework_overhead([request]) == 0.0
        assert backend.append_overhead(1000) == 0.0

    def test_unadmitted_request_rejected(self, backend):
        with pytest.raises(SchedulingError):
            backend.prepare_iteration([make_request("ghost", 100)])

    def test_oversized_prompt_not_admissible(self, backend, shard):
        request = make_request("big", shard.max_context + 1)
        assert not backend.can_admit(request)


class TestPagedBackend:
    @pytest.fixture
    def backend(self, device, shard):
        return PagedMemory(device, shard, block_size=16, library="vLLM")

    def test_layout(self, backend):
        assert backend.layout is KvLayout.PAGED

    def test_pool_committed_up_front(self, device, shard):
        before = device.pool.committed
        PagedMemory(device, shard, block_size=16, library="vLLM")
        # The whole block pool is cudaMalloc'd at startup.
        assert device.pool.committed > before

    def test_admit_and_grow(self, backend):
        request = make_request("r1", 100)
        backend.admit(request)
        assert backend.prepare_iteration([request])
        allocation = backend.blocks.allocation("r1")
        assert allocation.num_blocks == backend.blocks.blocks_needed(100)

    def test_block_table_cost_scales_with_batch(self, backend):
        requests = []
        for i in range(4):
            request = make_request(f"r{i}", 1600)
            backend.admit(request)
            backend.prepare_iteration(requests + [request])
            requests.append(request)
        small = backend.framework_overhead(requests[:1])
        large = backend.framework_overhead(requests)
        assert large > small

    def test_prefill_append_cost_positive_for_fi(self, device, shard):
        backend = PagedMemory(device, shard, block_size=16, library="FlashInfer")
        assert backend.append_overhead(16_384) > 0.0

    def test_admission_reserves_prompt_blocks(self, backend):
        request = make_request("r1", 16_000)
        free_before = backend.blocks.free_blocks
        backend.admit(request)
        assert backend.blocks.free_blocks == (
            free_before - backend.blocks.blocks_needed(16_000)
        )

    def test_oversized_prompt_not_admissible(self, shard):
        tiny = Device(A100, reserved_bytes=79 * GB)  # 1GB of KV
        backend = PagedMemory(tiny, shard, block_size=16, library="vLLM")
        assert not backend.can_admit(make_request("big", 100_000))

    def test_decode_growth_exhaustion_returns_false(self, shard):
        tiny = Device(A100, reserved_bytes=79 * GB)  # 1GB of KV
        backend = PagedMemory(tiny, shard, block_size=16, library="vLLM")
        # Fill the pool exactly, then ask for one more token's block.
        capacity_tokens = backend.blocks.num_blocks * 16
        request = make_request("full", capacity_tokens)
        backend.admit(request)
        request.prefill_done = True
        request.generated = 0
        assert not backend.prepare_iteration([request])

    def test_release_recycles_blocks(self, backend):
        request = make_request("r1", 1000)
        backend.admit(request)
        backend.prepare_iteration([request])
        free_before = backend.blocks.free_blocks
        backend.release(request)
        assert backend.blocks.free_blocks > free_before


class TestStaticBackend:
    def test_slots_bounded_by_memory(self, shard):
        # 16GB budget / (200K tokens * 64KB) = 16GB / 12.2GB -> 1 slot.
        device = Device(A100, reserved_bytes=64 * GB)
        backend = StaticMemory(device, shard, max_batch_size=8)
        assert backend.max_slots == 1

    def test_fragmentation_is_total_commitment(self, shard):
        device = Device(A100, reserved_bytes=64 * GB)
        backend = StaticMemory(device, shard, max_batch_size=8)
        # A slot commits max-context bytes regardless of use.
        assert backend.committed_bytes >= (
            shard.max_context * shard.kv_bytes_per_token
        )

    def test_admission_limited_by_slots(self, shard):
        device = Device(A100, reserved_bytes=64 * GB)
        backend = StaticMemory(device, shard, max_batch_size=8)
        first = make_request("r1", 100)
        backend.admit(first)
        second = make_request("r2", 100)
        assert not backend.can_admit(second)
        with pytest.raises(SchedulingError):
            backend.admit(second)

    def test_release_frees_slot(self, shard):
        device = Device(A100, reserved_bytes=64 * GB)
        backend = StaticMemory(device, shard, max_batch_size=8)
        request = make_request("r1", 100)
        backend.admit(request)
        backend.release(request)
        assert backend.can_admit(make_request("r2", 100))

    def test_too_small_device_rejected(self, shard):
        tiny = Device(A100, reserved_bytes=79 * GB)
        with pytest.raises(ConfigError):
            StaticMemory(tiny, shard, max_batch_size=1)

    def test_static_vs_dynamic_capacity_gap(self, shard):
        # The motivating comparison: a 16GB budget holds ONE static
        # max-context slot but dozens of real 2K-token requests under
        # vAttention.
        device = Device(A100, reserved_bytes=64 * GB)
        static_slots = StaticMemory(device, shard, max_batch_size=64).max_slots
        dynamic_device = Device(A100, reserved_bytes=64 * GB)
        config = VAttentionConfig(
            shard=shard, max_batch_size=64, page_group_size=2 * MB
        )
        backend = VAttentionMemory(dynamic_device, config)
        admitted = 0
        for i in range(64):
            request = make_request(f"r{i}", 2000)
            if not backend.can_admit(request):
                break
            backend.admit(request)
            request.prefill_done = True
            request.generated = 1
            backend.prepare_iteration([request])
            admitted += 1
        assert static_slots == 1
        assert admitted >= 32
