"""PagedAttention block manager invariants."""

import pytest

from repro.errors import ConfigError, OutOfPhysicalMemory, SchedulingError
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.paged.block_manager import BlockManager
from repro.units import GB, KB


@pytest.fixture
def manager() -> BlockManager:
    shard = ShardedModel(YI_6B, 1)
    # 1GB budget, 16-token blocks of 16*64KB = 1MB each -> 1024 blocks.
    return BlockManager(shard, 1 * GB, block_size=16)


class TestPoolSizing:
    def test_block_bytes(self, manager):
        assert manager.block_bytes == 16 * 64 * KB

    def test_num_blocks(self, manager):
        assert manager.num_blocks == 1024

    def test_budget_too_small_rejected(self):
        shard = ShardedModel(YI_6B, 1)
        with pytest.raises(ConfigError):
            BlockManager(shard, 1024, block_size=16)

    def test_bad_block_size_rejected(self):
        shard = ShardedModel(YI_6B, 1)
        with pytest.raises(ConfigError):
            BlockManager(shard, 1 * GB, block_size=0)


class TestAllocate:
    def test_blocks_needed_rounds_up(self, manager):
        assert manager.blocks_needed(1) == 1
        assert manager.blocks_needed(16) == 1
        assert manager.blocks_needed(17) == 2
        assert manager.blocks_needed(0) == 0

    def test_allocate_takes_blocks(self, manager):
        allocation = manager.allocate("r1", 100)
        assert allocation.num_blocks == 7
        assert manager.free_blocks == 1024 - 7

    def test_duplicate_allocation_rejected(self, manager):
        manager.allocate("r1", 10)
        with pytest.raises(SchedulingError):
            manager.allocate("r1", 10)

    def test_exhaustion_raises(self, manager):
        manager.allocate("big", 1024 * 16)
        with pytest.raises(OutOfPhysicalMemory):
            manager.allocate("more", 16)

    def test_can_allocate(self, manager):
        assert manager.can_allocate(1024 * 16)
        assert not manager.can_allocate(1024 * 16 + 1)


class TestExtend:
    def test_extend_within_block_is_free(self, manager):
        manager.allocate("r1", 10)
        assert manager.extend("r1", 16) == 0

    def test_extend_across_block_boundary(self, manager):
        manager.allocate("r1", 16)
        assert manager.extend("r1", 17) == 1

    def test_shrink_rejected(self, manager):
        manager.allocate("r1", 32)
        with pytest.raises(SchedulingError):
            manager.extend("r1", 16)

    def test_extend_exhaustion(self, manager):
        manager.allocate("big", 1023 * 16)
        manager.allocate("r1", 16)
        with pytest.raises(OutOfPhysicalMemory):
            manager.extend("r1", 48)

    def test_unknown_request_rejected(self, manager):
        with pytest.raises(SchedulingError):
            manager.extend("ghost", 10)


class TestFree:
    def test_free_returns_blocks(self, manager):
        manager.allocate("r1", 100)
        assert manager.free("r1") == 7
        assert manager.free_blocks == 1024

    def test_blocks_are_reusable_after_free(self, manager):
        manager.allocate("r1", 1024 * 16)
        manager.free("r1")
        manager.allocate("r2", 1024 * 16)

    def test_double_free_rejected(self, manager):
        manager.allocate("r1", 10)
        manager.free("r1")
        with pytest.raises(SchedulingError):
            manager.free("r1")


class TestFragmentation:
    def test_bounded_by_one_block_per_request(self, manager):
        manager.allocate("r1", 17)  # 2 blocks, 15 tokens wasted
        waste = manager.internal_fragmentation_bytes()
        assert waste == 15 * manager.shard.kv_bytes_per_token
        assert waste < manager.block_bytes

    def test_full_blocks_waste_nothing(self, manager):
        manager.allocate("r1", 32)
        assert manager.internal_fragmentation_bytes() == 0

    def test_peak_tracking(self, manager):
        manager.allocate("r1", 320)
        manager.free("r1")
        assert manager.peak_blocks_used == 20
        assert manager.used_blocks == 0
