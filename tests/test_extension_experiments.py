"""Extension experiment drivers produce their claimed shapes."""


from repro.experiments import (
    ext_chunked_prefill,
    ext_cluster_router,
    ext_large_models,
    ext_prefix_cache,
    ext_prefix_sharing,
    ext_swap_policy,
    ext_uvm_limitations,
)
from repro.units import KB, MB


class TestPrefixSharing:
    def test_majority_of_memory_dedupes(self):
        rows = ext_prefix_sharing.run(page_group_sizes=(64 * KB, 2 * MB))
        for row in rows:
            assert row.reduction > 0.5
            assert row.saved_bytes == (
                row.physical_without_sharing - row.physical_with_sharing
            )

    def test_smaller_pages_share_more_precisely(self):
        rows = {r.page_group_size: r for r in ext_prefix_sharing.run(
            page_group_sizes=(64 * KB, 2 * MB)
        )}
        # At 64KB the 8192-token prefix aliases exactly; at 2MB part of
        # it falls in a partial page-group and must be copied... unless
        # the prefix happens to align. Either way 64KB saves at least
        # as large a fraction.
        assert rows[64 * KB].reduction >= rows[2 * MB].reduction - 1e-9


class TestPrefixCache:
    def test_cache_strictly_wins_at_high_sharing(self):
        (row,) = ext_prefix_cache.run(sharing_factors=(8,))
        assert row.prefill_throughput_on > row.prefill_throughput_off
        assert row.mean_ttft_on < row.mean_ttft_off
        assert row.hits > 0
        assert row.aliased_rows > 0
        assert row.bytes_saved > 0

    def test_no_sharing_is_harmless(self):
        (row,) = ext_prefix_cache.run(sharing_factors=(1,))
        assert row.hits == 0
        assert row.throughput_gain >= 1.0 - 1e-9


class TestSwapPolicy:
    def test_swap_advantage_grows_with_context(self):
        rows = ext_swap_policy.run(prompts=(8_192, 32_768))
        assert rows[-1].speedup >= rows[0].speedup
        for row in rows:
            assert row.swap_prefills <= row.recompute_prefills
            assert row.swap_transfers >= 1


class TestUvmLimitations:
    def test_vattention_outlives_uvm(self):
        rows = {r.backend: r for r in ext_uvm_limitations.run(
            request_count=120, qps=6.0
        )}
        assert rows["vattention"].finished == 120
        assert rows["uvm"].finished <= rows["vattention"].finished
        # UVM cannot hand memory back: committed never drops below
        # vAttention's working set.
        assert rows["uvm"].final_committed >= rows["vattention"].final_committed


class TestChunkedPrefill:
    def test_stall_shrinks_with_token_budget(self):
        rows = {r.token_budget: r for r in ext_chunked_prefill.run(
            token_budgets=(None, 2_048)
        )}
        assert rows[None].worst_decode_stall > 5 * rows[2_048].worst_decode_stall

    def test_makespan_preserved(self):
        rows = ext_chunked_prefill.run(token_budgets=(None, 2_048))
        makespans = [r.makespan for r in rows]
        assert max(makespans) / min(makespans) < 1.1


class TestClusterRouter:
    def test_cache_aware_beats_round_robin(self):
        rows = {
            row.policy: row
            for row in ext_cluster_router.run(
                replica_counts=(2,),
                policies=("round_robin", "cache_aware"),
                sharing_factors=(8,),
            )
        }
        rr, ca = rows["round_robin"], rows["cache_aware"]
        assert ca.cache_hit_rate > rr.cache_hit_rate
        assert ca.mean_ttft < rr.mean_ttft
        assert all(n > 0 for n in ca.requests_per_replica)

    def test_no_sharing_control_has_no_hits(self):
        (row,) = ext_cluster_router.run(
            replica_counts=(2,),
            policies=("cache_aware",),
            sharing_factors=(1,),
        )
        assert row.cache_hit_rate == 0.0
        assert row.cache_hit_tokens == 0

    def test_disaggregation_accounts_migrations(self):
        rows = {
            row.interconnect: row
            for row in ext_cluster_router.run_disaggregated(
                n_replicas=2, n_prefill_replicas=1
            )
        }
        for row in rows.values():
            assert row.migrations == ext_cluster_router.REQUESTS
            assert row.migrated_bytes > 0
            assert row.migration_seconds > 0
        assert (
            rows["pcie"].migration_seconds
            > rows["nvlink"].migration_seconds
        )


class TestLargeModels:
    def test_kv_footprints(self):
        rows = {r.model: r for r in ext_large_models.run()}
        # 70B: 2(K,V) x 80 layers x 8 KV heads x 128 x 2B = 320KB/token.
        assert rows["Llama-3-70B"].kv_bytes_per_token == 320 * KB
        # GPT-3 has MHA (96 KV heads): 2 x 96 x 12288 x 2B = 4.5MB/token.
        assert rows["GPT-3-175B"].kv_bytes_per_token == 4_718_592

    def test_block_sizes_scale_with_heads(self):
        rows = {r.model: r for r in ext_large_models.run()}
        # 70B TP-8: 1 KV head/worker -> 2MB holds 8192 tokens.
        assert rows["Llama-3-70B"].block_size[2 * MB] == 8_192
        # 175B TP-8: 12 KV heads/worker -> 2MB holds 682 tokens.
        assert rows["GPT-3-175B"].block_size[2 * MB] == 682

    def test_virtual_memory_stays_feasible(self):
        # Even at B=128 the per-worker VA stays far below 128TB.
        for row in ext_large_models.run():
            assert row.virtual_bytes_b128 < 128e12
