"""The paper's headline claims, asserted end to end.

Each test names the claim as the paper states it (abstract / intro /
section) and checks the reproduced system exhibits it. These are the
"did we actually reproduce the paper" gates, one level above the
per-figure benches.
"""

import pytest

from repro.experiments import (
    fig08_decode_throughput,
    fig09_offline_throughput,
    fig11_fa3_portability,
    tab07_decode_kernel_latency,
)
from repro.experiments.prefill_model import prefill_breakdown
from repro.gpu.spec import A100
from repro.gpu.vmm import api_latency
from repro.models.shard import ShardedModel
from repro.models.zoo import LLAMA3_8B, YI_34B, YI_6B
from repro.units import KB, MB, us


class TestAbstractClaims:
    def test_up_to_1_23x_over_paged_kernels(self):
        """Abstract: 'improves LLM serving throughput by up to 1.23x
        compared to the use of PagedAttention-based kernels of
        FlashAttention-2 and FlashInfer.'"""
        rows = fig09_offline_throughput.run(
            models=[(YI_6B, 1)], request_count=60
        )
        best_gain = max(
            rows[0].speedup("FA2_vAttention", "FA2_Paged"),
            rows[0].speedup("FA2_vAttention", "FI_Paged"),
        )
        assert 1.1 < best_gain < 1.4

    def test_vllm_paged_kernel_up_to_2_8x_slower(self):
        """Table 1: 'vLLM's PagedAttention kernel is up to 2.8x slower
        than FlashAttention-2.'"""
        rows = tab07_decode_kernel_latency.run()
        worst = max(row.vllm_gap() for row in rows)
        assert worst == pytest.approx(2.8, rel=0.05)

    def test_decode_throughput_up_to_1_99x_over_vllm(self):
        """Intro: 'vAttention outperforms vLLM by up to 1.99x in decode
        throughput.'"""
        rows = fig08_decode_throughput.run(
            models=[(YI_6B, 1)], batches=(16, 32), decode_iterations=50
        )
        speedup = fig08_decode_throughput.max_speedup_over_vllm(rows, "Yi-6B")
        assert 1.7 < speedup < 2.5

    def test_fa3_1_26_to_1_5x_over_paged_fa2(self):
        """Intro: FA3 via vAttention gives '1.26-1.5x higher throughput
        over PagedAttention-based FlashAttention-2.'"""
        rows = fig11_fa3_portability.run(
            models=[(YI_6B, 1)], request_count=60
        )
        assert 1.2 < rows[0].fa3_gain_over_paged() < 1.7


class TestMechanismClaims:
    def test_s6_growth_example_5ms(self):
        """S6.1: growing one Yi-34B request by one page-group per tensor
        requires '120 calls to cuMemMap + cuMemSetAccess each of which
        takes about 40 microseconds ... about 5 millisecond latency.'"""
        per_call = api_latency("map", 2 * MB) + api_latency("set_access", 2 * MB)
        assert per_call == pytest.approx(us(40))
        assert 120 * per_call == pytest.approx(4.8e-3, rel=0.01)

    def test_s4_per_token_footprints(self):
        """S4 Observation-2: per-token KV of 64KB / 128KB / 240KB."""
        assert YI_6B.kv_bytes_per_token == 64 * KB
        assert LLAMA3_8B.kv_bytes_per_token == 128 * KB
        assert YI_34B.kv_bytes_per_token == 240 * KB

    def test_s5_virtual_memory_example(self):
        """S5.1.3: Yi-34B TP-2, B=500 needs ~12TB of virtual memory —
        'virtual memory is always plentiful' vs 128TB per process."""
        from repro.core.config import VAttentionConfig

        config = VAttentionConfig(
            shard=ShardedModel(YI_34B, 2),
            max_batch_size=500,
            page_group_size=2 * MB,
        )
        assert config.total_virtual_bytes == pytest.approx(12e12, rel=0.05)
        assert config.total_virtual_bytes < 128e12

    def test_prefill_gains_are_attention_gains(self):
        """S7.1: 'nearly all the gains of vAttention are due to faster
        attention kernels' for FlashAttention-2."""
        shard = ShardedModel(YI_6B, 1)
        paged = prefill_breakdown("FA2_Paged", shard, A100, 196_608)
        vattn = prefill_breakdown("FA2_vAttention", shard, A100, 196_608)
        total_gain = paged.total_seconds - vattn.total_seconds
        attention_gain = paged.attention_seconds - vattn.attention_seconds
        assert attention_gain / total_gain > 0.95

    def test_decode_parity_prefill_advantage(self):
        """S7.2: vAttention only matches PagedAttention for decode (the
        kernel is memory-bound) but beats it for prefill (compute-bound
        kernels cannot hide the paging overhead)."""
        shard = ShardedModel(YI_6B, 1)
        from repro.kernels.registry import get_kernel

        fa2 = get_kernel("fa2", A100)
        fa2_paged = get_kernel("fa2_paged", A100)
        decode_gap = fa2_paged.decode_time(
            shard, [16_384] * 16
        ) / fa2.decode_time(shard, [16_384] * 16)
        prefill_gap = fa2_paged.prefill_time(shard, 16_384) / fa2.prefill_time(
            shard, 16_384
        )
        assert decode_gap < 1.05 < 1.3 < prefill_gap
