"""VAttention manager: the Table 4 API and the S6 optimizations."""

import pytest

from repro.core.config import VAttentionConfig
from repro.core.vattention import VAttention
from repro.errors import SchedulingError
from repro.gpu.device import Device
from repro.gpu.spec import A100
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_34B, YI_6B
from repro.units import GB, KB, MB, us


def make_manager(
    model=YI_6B,
    tp=1,
    batch=8,
    page_group=2 * MB,
    reserved=80 * GB - 16 * GB,  # 16GB of KV budget
    **flags,
):
    device = Device(A100, reserved_bytes=reserved)
    config = VAttentionConfig(
        shard=ShardedModel(model, tp),
        max_batch_size=batch,
        page_group_size=page_group,
        **flags,
    )
    return device, config, VAttention(device, config)


def step_for(manager, req_id, ctx):
    seq = [0] * manager.config.max_batch_size
    seq[req_id] = ctx
    return manager.step(seq)


class TestInit:
    def test_reserves_2n_virtual_buffers(self):
        _, config, manager = make_manager()
        assert len(manager.buffers) == 64
        assert all(b.size == config.buffer_bytes for b in manager.buffers)

    def test_precreates_physical_rows(self):
        device, config, manager = make_manager()
        assert manager.total_rows == manager.free_rows
        assert device.pool.committed == manager.total_rows * config.row_bytes

    def test_rows_capped_by_max_demand(self):
        # A single-slot batch can never use more rows than one full
        # request, however large the pool.
        _, config, manager = make_manager(batch=1, reserved=0)
        assert manager.total_rows == config.rows_per_full_request


class TestReqIdLifecycle:
    def test_alloc_returns_valid_ids(self):
        _, _, manager = make_manager(batch=4)
        ids = {manager.alloc_reqid() for _ in range(4)}
        assert ids == {0, 1, 2, 3}

    def test_exhausted_slots_raise(self):
        _, _, manager = make_manager(batch=2)
        manager.alloc_reqid()
        manager.alloc_reqid()
        with pytest.raises(SchedulingError):
            manager.alloc_reqid()

    def test_free_then_realloc(self):
        _, _, manager = make_manager(batch=2, eager_allocation=False)
        req = manager.alloc_reqid()
        manager.free_reqid(req)
        assert manager.alloc_reqid() == req  # reuse preferred

    def test_double_free_rejected(self):
        _, _, manager = make_manager()
        req = manager.alloc_reqid()
        manager.free_reqid(req)
        with pytest.raises(SchedulingError):
            manager.free_reqid(req)

    def test_free_unknown_rejected(self):
        _, _, manager = make_manager()
        with pytest.raises(SchedulingError):
            manager.free_reqid(99)


class TestStep:
    def test_maps_rows_for_context(self):
        _, config, manager = make_manager(eager_allocation=False)
        req = manager.alloc_reqid()
        assert step_for(manager, req, 5000) == 0
        # 5000 tokens at 2048 tokens/page-group -> 3 rows.
        assert manager.slots[req].mapped_rows == 3

    def test_step_is_incremental(self):
        _, _, manager = make_manager(eager_allocation=False)
        req = manager.alloc_reqid()
        step_for(manager, req, 2048)
        assert manager.stats.rows_mapped == 1
        step_for(manager, req, 2049)
        assert manager.stats.rows_mapped == 2

    def test_no_growth_no_work(self):
        _, _, manager = make_manager(eager_allocation=False)
        req = manager.alloc_reqid()
        step_for(manager, req, 2000)
        before = manager.stats.map_calls
        step_for(manager, req, 2001)  # same page-group
        assert manager.stats.map_calls == before

    def test_wrong_length_rejected(self):
        _, _, manager = make_manager()
        with pytest.raises(SchedulingError):
            manager.step([0, 0])

    def test_inactive_nonzero_rejected(self):
        _, _, manager = make_manager()
        seq = [0] * 8
        seq[3] = 100
        with pytest.raises(SchedulingError):
            manager.step(seq)

    def test_shrinking_context_rejected(self):
        _, _, manager = make_manager()
        req = manager.alloc_reqid()
        step_for(manager, req, 2000)
        with pytest.raises(SchedulingError):
            step_for(manager, req, 1000)

    def test_over_max_context_rejected(self):
        _, _, manager = make_manager()
        req = manager.alloc_reqid()
        with pytest.raises(SchedulingError):
            step_for(manager, req, 300_000)

    def test_failure_returns_minus_one(self):
        # 16GB budget / 128MB rows = 125 rows; a 192K-token request
        # needs 94 of them, so a second one cannot fit.
        _, _, manager = make_manager(batch=2, eager_allocation=False)
        first = manager.alloc_reqid()
        assert step_for(manager, first, 192_000) == 0
        second = manager.alloc_reqid()
        seq = [0] * 2
        seq[first] = 192_000
        seq[second] = 192_000
        assert manager.step(seq) == -1
        assert manager.stats.step_failures == 1


class TestSynchronousLatency:
    def test_paper_s6_example_yi34b_one_row(self):
        # Growing one Yi-34B request by one page-group row = 120 calls
        # of cuMemMap+cuMemSetAccess at ~40us ~= 5ms (paper S6.1).
        _, _, manager = make_manager(
            model=YI_34B, tp=2, batch=2,
            eager_allocation=False, overlap_allocation=False,
            reserved=40 * GB,
        )
        req = manager.alloc_reqid()
        step_for(manager, req, 1)  # maps exactly one row
        assert manager.stats.last_step_sync_seconds == pytest.approx(
            120 * us(40)
        )

    def test_small_pages_charge_vmemmap_rate(self):
        _, _, manager = make_manager(
            page_group=64 * KB,
            eager_allocation=False, overlap_allocation=False,
        )
        req = manager.alloc_reqid()
        step_for(manager, req, 64)  # one 64-token row, 64 tensors
        assert manager.stats.last_step_sync_seconds == pytest.approx(
            64 * us(8)
        )


class TestDeferredReclamation:
    def test_next_request_inherits_pages(self):
        _, _, manager = make_manager(eager_allocation=False)
        first = manager.alloc_reqid()
        step_for(manager, first, 10_000)
        rows = manager.slots[first].mapped_rows
        manager.free_reqid(first)
        second = manager.alloc_reqid()
        assert second == first
        assert manager.slots[second].mapped_rows == rows
        assert manager.stats.reqids_reused_with_memory == 1

    def test_inherited_prefill_is_free(self):
        _, _, manager = make_manager(
            eager_allocation=False, overlap_allocation=False
        )
        first = manager.alloc_reqid()
        step_for(manager, first, 10_000)
        manager.free_reqid(first)
        second = manager.alloc_reqid()
        maps_before = manager.stats.map_calls
        step_for(manager, second, 10_000)
        assert manager.stats.map_calls == maps_before  # fully reused
        assert manager.stats.last_step_sync_seconds == 0.0

    def test_larger_follower_pays_only_the_difference(self):
        _, config, manager = make_manager(
            eager_allocation=False, overlap_allocation=False
        )
        first = manager.alloc_reqid()
        step_for(manager, first, 4096)  # 2 rows
        manager.free_reqid(first)
        second = manager.alloc_reqid()
        step_for(manager, second, 8192)  # needs 4 rows, inherits 2
        assert manager.stats.rows_mapped == 4

    def test_disabled_unmaps_on_free(self):
        _, _, manager = make_manager(
            deferred_reclamation=False, eager_allocation=False
        )
        req = manager.alloc_reqid()
        step_for(manager, req, 10_000)
        manager.free_reqid(req)
        assert manager.slots[req].mapped_rows == 0
        assert manager.stats.rows_unmapped == manager.stats.rows_mapped


class TestEagerAllocation:
    def test_next_candidate_gets_pages(self):
        _, config, manager = make_manager(eager_allocation=True)
        manager.alloc_reqid()
        manager.on_iteration_end(1.0)  # let the background work land
        candidates = [s for s in manager.slots if not s.active]
        assert max(s.mapped_rows for s in candidates) == config.eager_page_groups

    def test_eager_work_is_opportunistic(self):
        _, _, manager = make_manager(eager_allocation=True)
        req = manager.alloc_reqid()
        # Eager mapping latency must not spill into step() sync time.
        assert step_for(manager, req, 100) == 0
        assert manager.background.critical_pending == 0.0
        assert manager.background.opportunistic_pending > 0.0


class TestOverlap:
    def test_predicted_growth_runs_in_background(self):
        _, _, manager = make_manager(
            eager_allocation=False, overlap_allocation=True
        )
        req = manager.alloc_reqid()
        step_for(manager, req, 2048)  # boundary: next token needs a row
        manager.on_iteration_end(1.0)  # plenty of compute to hide it
        assert step_for(manager, req, 2049) == 0
        assert manager.stats.last_step_sync_seconds == 0.0

    def test_short_window_spills_residual(self):
        _, _, manager = make_manager(
            eager_allocation=False, overlap_allocation=True
        )
        req = manager.alloc_reqid()
        step_for(manager, req, 2048)
        manager.on_iteration_end(0.0)  # no time to hide anything
        step_for(manager, req, 2049)
        assert manager.stats.last_step_sync_seconds > 0.0

    def test_disabled_overlap_charges_step(self):
        _, _, manager = make_manager(
            eager_allocation=False, overlap_allocation=False
        )
        req = manager.alloc_reqid()
        step_for(manager, req, 2048)
        manager.on_iteration_end(1.0)
        step_for(manager, req, 2049)
        assert manager.stats.last_step_sync_seconds > 0.0


class TestReclamationThreshold:
    def test_free_pool_replenished_from_inactive(self):
        _, _, manager = make_manager(
            batch=4, eager_allocation=False, reclamation_threshold=0.5
        )
        req = manager.alloc_reqid()
        # Consume well past half the rows, then free the request.
        target = int(manager.total_rows * 0.9) * 2048
        step_for(manager, req, min(target, 192_000))
        manager.free_reqid(req)
        manager.on_iteration_end(10.0)
        assert manager.free_rows >= int(
            manager.total_rows * manager.config.reclamation_threshold
        )


class TestAccounting:
    def test_fragmentation_bounded_by_one_row(self):
        _, config, manager = make_manager(eager_allocation=False)
        req = manager.alloc_reqid()
        step_for(manager, req, 2049)  # 2 rows for 2049 tokens
        waste = manager.internal_fragmentation_bytes
        assert 0 < waste < config.row_bytes

    def test_used_plus_waste_equals_mapped_for_active(self):
        _, config, manager = make_manager(eager_allocation=False)
        req = manager.alloc_reqid()
        step_for(manager, req, 3000)
        active_mapped = manager.slots[req].mapped_rows * config.row_bytes
        assert manager.used_bytes + manager.internal_fragmentation_bytes == (
            active_mapped
        )

    def test_shutdown_releases_everything(self):
        device, _, manager = make_manager()
        req = manager.alloc_reqid()
        step_for(manager, req, 10_000)
        manager.shutdown()
        assert device.pool.committed == 0
        assert device.va_space.reserved_bytes == 0
        with pytest.raises(SchedulingError):
            manager.alloc_reqid()

    def test_shutdown_idempotent(self):
        _, _, manager = make_manager()
        manager.shutdown()
        manager.shutdown()
