"""Span tracing, latency attribution, and Prometheus exposition.

The tricky span paths get dedicated coverage here:

* Decode fast-forwarding — a stretch must emit ONE span per batch
  request whose window and iteration count exactly match the legacy
  per-iteration loop's span train (the clocks are bit-identical, so
  the comparisons are exact equality, not approx).
* Preemption → re-admission — the evicted window surfaces as a
  ``preempted`` span and attribution books it additively.
* Drain re-routing — the re-route span carries the original arrival
  and its child ``kv_migration`` span's byte count matches the
  migration link's own accounting event for event.
* Spans-off runs — ``emit_span`` is a no-op and reports carry no
  attribution, keeping the default path byte-identical.

Plus unit coverage for the attribution walk (gap classification,
disagg stitching, original-arrival restoration) and the Prometheus
text renderer.
"""

import math

from repro.cluster import ClusterConfig, ClusterEngine, ScaleDecision
from repro.cluster.autoscaler import AutoscalerPolicy
from repro.gpu.spec import A100
from repro.metrics import attribution
from repro.metrics.dashboard import render_waterfall
from repro.metrics.spans import (
    base_request_id,
    spans_from,
    write_spans_jsonl,
)
from repro.metrics.telemetry import TelemetryRegistry, enabled
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.serving.engine import EngineConfig, LLMEngine
from repro.units import GB
from repro.workloads.arrival import poisson_arrivals
from repro.workloads.traces import fixed_trace, shared_prefix_trace


def make_engine(**overrides) -> LLMEngine:
    defaults = dict(
        shard=ShardedModel(YI_6B, 1),
        gpu=A100,
        memory_backend="vattention",
        prefill_kernel="fa2",
        decode_kernel="fa2",
        max_batch_size=8,
    )
    defaults.update(overrides)
    return LLMEngine(EngineConfig(**defaults))


def _run_with_spans(**overrides):
    with enabled(TelemetryRegistry(record_spans=True)) as registry:
        engine = make_engine(**overrides)
        engine.submit(
            fixed_trace(count=4, prompt_len=1000, max_new_tokens=200)
        )
        report = engine.run()
    return registry, report


def _decode_spans_by_request(registry):
    spans = {}
    for span in spans_from(registry.trace_records()):
        if span.phase == "decode":
            spans.setdefault(span.request, []).append(span)
    return spans


class TestFastForwardSpans:
    def test_stretch_emits_one_span_with_legacy_window(self):
        fast_reg, fast_report = _run_with_spans(fast_forward=True)
        legacy_reg, legacy_report = _run_with_spans(fast_forward=False)
        # The clocks are bit-identical across the two paths...
        assert fast_report.end_time == legacy_report.end_time
        fast = _decode_spans_by_request(fast_reg)
        legacy = _decode_spans_by_request(legacy_reg)
        assert fast.keys() == legacy.keys()
        stretched = 0
        for request, legacy_spans in legacy.items():
            fast_spans = fast[request]
            # ...so the span trains cover the same window exactly,
            assert fast_spans[0].start == legacy_spans[0].start
            assert fast_spans[-1].end == legacy_spans[-1].end
            # collapse iterations one-for-one into stretch spans,
            assert (
                sum(s.extras.get("iterations", 1) for s in fast_spans)
                == len(legacy_spans)
            )
            assert math.fsum(
                s.duration for s in fast_spans
            ) == math.fsum(s.duration for s in legacy_spans)
            stretched += sum(
                1 for s in fast_spans if s.extras.get("iterations", 1) > 1
            )
        # ...and at least one genuine multi-iteration stretch occurred
        # (otherwise this test proves nothing).
        assert stretched > 0
        for spans in legacy.values():
            assert all(s.extras.get("iterations", 1) == 1 for s in spans)

    def test_fast_forward_attribution_matches_legacy(self):
        fast_reg, _ = _run_with_spans(fast_forward=True)
        legacy_reg, _ = _run_with_spans(fast_forward=False)
        fast = attribution.build(fast_reg.trace_records())
        legacy = attribution.build(legacy_reg.trace_records())
        assert not fast.closure_violations()
        assert not legacy.closure_violations()
        for a, b in zip(fast.requests, legacy.requests):
            assert a.request == b.request
            assert a.e2e == b.e2e
            for bucket in attribution.BUCKETS:
                assert a.buckets[bucket] == b.buckets[bucket], bucket


class TestClusterFastLoopSpans:
    """Fleet-level analytic jumps leave the same span record a legacy
    fleet leaves: one stretch span per decode jump whose window,
    collapsed iteration count, and summed duration exactly equal the
    per-iteration train, with identical attribution."""

    def _cluster_run(self, fast_forward: bool):
        with enabled(TelemetryRegistry(record_spans=True)) as registry:
            cluster = ClusterEngine(
                ClusterConfig(
                    engine=EngineConfig(
                        shard=ShardedModel(YI_6B, 1),
                        gpu=A100,
                        memory_backend="vattention",
                        max_batch_size=8,
                        fast_forward=fast_forward,
                    ),
                    n_replicas=2,
                    routing_policy="round_robin",
                    fast_forward=fast_forward,
                )
            )
            cluster.submit(
                shared_prefix_trace(
                    count=16,
                    sharing_factor=4,
                    prefix_tokens=2_048,
                    arrivals=poisson_arrivals(qps=4.0, count=16, seed=31),
                )
            )
            report = cluster.run()
        return registry, report

    def test_fleet_stretches_match_legacy_span_trains(self):
        fast_reg, fast_report = self._cluster_run(fast_forward=True)
        legacy_reg, legacy_report = self._cluster_run(fast_forward=False)
        assert fast_report.end_time == legacy_report.end_time
        fast = _decode_spans_by_request(fast_reg)
        legacy = _decode_spans_by_request(legacy_reg)
        assert fast.keys() == legacy.keys()
        stretched = 0
        for request, legacy_spans in legacy.items():
            fast_spans = fast[request]
            assert fast_spans[0].start == legacy_spans[0].start
            assert fast_spans[-1].end == legacy_spans[-1].end
            assert (
                sum(s.extras.get("iterations", 1) for s in fast_spans)
                == len(legacy_spans)
            )
            assert math.fsum(
                s.duration for s in fast_spans
            ) == math.fsum(s.duration for s in legacy_spans)
            stretched += sum(
                1 for s in fast_spans if s.extras.get("iterations", 1) > 1
            )
        assert stretched > 0
        for spans in legacy.values():
            assert all(s.extras.get("iterations", 1) == 1 for s in spans)

    def test_cluster_attribution_matches_legacy(self):
        fast_reg, _ = self._cluster_run(fast_forward=True)
        legacy_reg, _ = self._cluster_run(fast_forward=False)
        fast = attribution.build(fast_reg.trace_records())
        legacy = attribution.build(legacy_reg.trace_records())
        assert not fast.closure_violations()
        assert not legacy.closure_violations()
        assert len(fast.requests) == len(legacy.requests)
        for a, b in zip(fast.requests, legacy.requests):
            assert a.request == b.request
            assert a.e2e == b.e2e
            for bucket in attribution.BUCKETS:
                assert a.buckets[bucket] == b.buckets[bucket], bucket


class TestPreemptionSpans:
    def _preempting_run(self):
        # The swap-policy experiment over-subscribes KV on purpose: its
        # cells deterministically evict and re-admit requests.
        from repro.experiments import ext_swap_policy

        with enabled(TelemetryRegistry(record_spans=True)) as registry:
            ext_swap_policy.run(prompts=(8_192,))
        return registry

    def test_evicted_window_becomes_preempted_span(self):
        registry = self._preempting_run()
        records = registry.trace_records()
        events = {
            (r["scope"], r["request"], r["time"])
            for r in records
            if r["event"] == "request_preempted"
        }
        assert events, "harness no longer preempts"
        preempted = [
            s for s in spans_from(records) if s.phase == "preempted"
        ]
        # One span per eviction; each starts at its eviction event and
        # ends at the re-pick.
        assert len(preempted) == len(events)
        for span in preempted:
            assert (span.scope, span.request, span.start) in events
            assert span.end > span.start

    def test_preempted_time_is_attributed(self):
        registry = self._preempting_run()
        records = registry.trace_records()
        built = attribution.build(records)
        assert not built.closure_violations()
        victims = {
            (r["scope"], r["request"])
            for r in records
            if r["event"] == "request_preempted"
        }
        booked = {
            (row.domain, row.request): row.buckets["preempted"]
            for row in built.requests
        }
        assert victims
        for victim in victims:
            assert booked[victim] > 0


class _DrainEarly(AutoscalerPolicy):
    """Scale in on the second decision so the victim still holds work."""

    name = "scripted_drain"

    def __init__(self):
        self.calls = 0

    def decide(self, view) -> ScaleDecision:
        delta = -1 if self.calls == 1 else 0
        self.calls += 1
        return ScaleDecision(delta, "scripted")


class TestDrainRerouteSpans:
    def _drain_run(self, cache: bool):
        # A two-replica cluster fed shared-prefix work, drained while
        # the victim's queue is still deep. With the prefix cache on,
        # the victim holds more of each queued request's KV than the
        # request itself has prefilled, so the drain crosses the
        # migration link; with it off, the re-route moves nothing.
        with enabled(TelemetryRegistry(record_spans=True)) as registry:
            config = ClusterConfig(
                engine=EngineConfig(
                    shard=ShardedModel(YI_6B, 1),
                    gpu=A100,
                    memory_backend="vattention",
                    max_batch_size=1,
                    enable_prefix_cache=cache,
                ),
                n_replicas=2,
                routing_policy="round_robin",
                autoscaler="queue_depth",
                min_replicas=1,
                max_replicas=2,
                cold_start_seconds=2.0,
                warmup_seconds=1.0,
                scale_decide_interval=0.5,
            )
            cluster = ClusterEngine(config)
            cluster.autoscaler = _DrainEarly()
            cluster.submit(shared_prefix_trace(
                count=8, sharing_factor=8, prefix_tokens=2_048,
                arrivals=[0.05 * index for index in range(8)],
            ))
            report = cluster.run()
        return registry, report

    def test_drain_migration_span_matches_link_accounting(self):
        registry, report = self._drain_run(cache=True)
        records = registry.trace_records()
        spans = spans_from(records)
        reroutes = {
            s.span: s for s in spans if s.phase == "drain_reroute"
        }
        migrations = [
            s for s in spans
            if s.phase == "kv_migration" and s.extras.get("kind") == "drain"
        ]
        assert migrations, "harness no longer drains warm work"
        events = [
            r for r in records
            if r["event"] == "migration_start" and r["kind"] == "drain"
        ]
        assert len(events) == len(migrations)
        # Each drain leg parents under a re-route span and mirrors the
        # link's own accounting event byte for byte.
        matched = set()
        for span in migrations:
            assert span.parent in reroutes
            hits = [
                index for index, event in enumerate(events)
                if index not in matched
                and event["cluster"] == span.scope
                and event["request"] == span.request
                and event["bytes"] == span.extras["bytes"]
                and event["time"] == span.start
                and event["done"] == span.end
            ]
            assert hits, f"no migration_start matches span {span}"
            matched.add(hits[0])
        assert sum(e["bytes"] for e in events) == report.migrated_bytes

    def test_reroute_span_restores_original_arrival(self):
        registry, _ = self._drain_run(cache=True)
        spans = spans_from(registry.trace_records())
        reroutes = [s for s in spans if s.phase == "drain_reroute"]
        assert reroutes
        for span in reroutes:
            assert span.extras["original_arrival"] <= span.start
            assert span.end >= span.start
        built = attribution.build(registry.trace_records())
        assert not built.closure_violations()

    def test_cold_drain_emits_zero_length_reroute(self):
        # Without a warm prefix cache nothing crosses the link: the
        # re-route span is zero-length but still restores the arrival.
        registry, report = self._drain_run(cache=False)
        spans = spans_from(registry.trace_records())
        reroutes = [s for s in spans if s.phase == "drain_reroute"]
        migrations = [
            s for s in spans
            if s.phase == "kv_migration" and s.extras.get("kind") == "drain"
        ]
        assert reroutes
        assert not migrations
        assert report.migrated_bytes == 0
        for span in reroutes:
            assert span.end == span.start
            assert "original_arrival" in span.extras


class TestSpansOff:
    def test_emit_span_is_noop_without_opt_in(self):
        registry = TelemetryRegistry()
        assert registry.record_spans is False
        assert registry.emit_span(
            phase="decode", start=0.0, end=1.0, scope="r0", request="a"
        ) is None
        assert registry.events == []

    def test_reports_carry_no_attribution(self):
        with enabled(TelemetryRegistry()) as registry:
            engine = make_engine()
            engine.submit(
                fixed_trace(count=2, prompt_len=500, max_new_tokens=5)
            )
            report = engine.run()
        assert registry.record_spans is False
        assert report.latency_attribution is None
        assert "latency_attribution" not in report.to_json()

    def test_reports_carry_attribution_with_spans_on(self):
        registry, report = _run_with_spans()
        document = report.to_json()
        assert report.latency_attribution is not None
        assert document["latency_attribution"]["requests"] == 4
        assert document["latency_attribution"]["closure_violations"] == 0


class TestSpanSerialization:
    def test_write_spans_jsonl_filters_and_sorts(self, tmp_path):
        import json

        registry, _ = _run_with_spans()
        path = tmp_path / "spans.jsonl"
        count = write_spans_jsonl(registry.trace_records(), str(path))
        lines = path.read_text().splitlines()
        assert count == len(lines) > 0
        records = [json.loads(line) for line in lines]
        assert all(r["event"] == "span" for r in records)
        assert [r["seq"] for r in records] == sorted(
            r["seq"] for r in records
        )

    def test_base_request_id(self):
        assert base_request_id("req-7#prefill") == "req-7"
        assert base_request_id("req-7#decode") == "req-7"
        assert base_request_id("req-7") == "req-7"


def _span(span_id, phase, start, end, scope="r0", request="a",
          parent=None, **extras):
    record = {
        "seq": span_id, "time": end, "event": "span", "span": span_id,
        "phase": phase, "scope": scope, "request": request,
        "start": start, "end": end, **extras,
    }
    if parent is not None:
        record["parent"] = parent
    return record


class TestAttributionWalk:
    def test_phases_partition_the_window(self):
        records = [
            _span(0, "queue_wait", 0.0, 2.0),
            _span(1, "prefill", 2.0, 3.0),
            _span(2, "decode", 4.0, 9.0),
            _span(3, "request", 0.0, 10.0, first_token=3.0),
        ]
        [row] = attribution.build(records).requests
        assert row.closed()
        assert row.buckets["queue_wait"] == 2.0
        assert row.buckets["prefill"] == 1.0
        # The gap before a compute phase is in-batch wait; the tail
        # gap after the last span falls there too.
        assert row.buckets["batch_wait"] == 2.0
        assert row.buckets["decode"] == 5.0
        assert row.ttft == 3.0
        assert math.fsum(row.ttft_buckets.values()) == row.ttft
        assert row.ttft_buckets["decode"] == 0.0

    def test_gap_into_queueing_phase_counts_as_queue_wait(self):
        records = [
            _span(0, "drain_reroute", 3.0, 4.0, original_arrival=0.0),
            _span(1, "decode", 4.0, 6.0),
            _span(2, "request", 3.0, 6.0),
        ]
        [row] = attribution.build(records).requests
        # original_arrival pulls the window back to the true arrival;
        # the uncovered lead-in is queueing, not batch wait.
        assert row.arrival == 0.0
        assert row.buckets["queue_wait"] == 3.0
        assert row.buckets["drain_reroute"] == 1.0
        assert row.closed()

    def test_nested_child_not_double_counted(self):
        records = [
            _span(0, "drain_reroute", 0.0, 4.0),
            _span(1, "kv_migration", 1.0, 2.0, parent=0),
            _span(2, "request", 0.0, 4.0),
        ]
        [row] = attribution.build(records).requests
        assert row.buckets["drain_reroute"] == 3.0
        assert row.buckets["kv_migration"] == 1.0
        assert row.closed()

    def test_disagg_clones_stitch_to_one_logical_request(self):
        init = [
            {"seq": 0, "time": 0.0, "event": "replica_init",
             "cluster": "c0", "replica": 0, "role": "prefill",
             "state": "serving", "scope": "r0"},
            {"seq": 1, "time": 0.0, "event": "replica_init",
             "cluster": "c0", "replica": 1, "role": "decode",
             "state": "serving", "scope": "r1"},
        ]
        records = init + [
            _span(10, "prefill", 0.0, 1.0, scope="r0",
                  request="q#prefill"),
            _span(11, "request", 0.0, 1.0, scope="r0",
                  request="q#prefill", first_token=1.0),
            _span(12, "kv_migration", 1.0, 2.0, scope="c0", request="q"),
            _span(13, "decode", 2.0, 5.0, scope="r1", request="q#decode"),
            _span(14, "request", 2.0, 5.0, scope="r1",
                  request="q#decode"),
        ]
        [row] = attribution.build(records).requests
        assert row.request == "q"
        assert row.domain == "c0"
        assert row.replica_scope == "r1"
        assert row.e2e == 5.0
        assert row.buckets["kv_migration"] == 1.0
        assert row.closed()

    def test_dominant_tail_phase(self):
        records = []
        for index in range(10):
            wait = 10.0 if index == 9 else 0.5
            base = index * 100.0
            records.append(_span(3 * index, "queue_wait", base,
                                 base + wait, request=f"q{index}"))
            records.append(_span(3 * index + 1, "decode", base + wait,
                                 base + wait + 1.0, request=f"q{index}"))
            records.append(_span(3 * index + 2, "request", base,
                                 base + wait + 1.0, request=f"q{index}",
                                 first_token=base + wait))
        report = attribution.build(records)
        assert report.dominant_tail_phase("ttft") == "queue_wait"
        assert report.to_json()["dominant_p99_ttft_phase"] == "queue_wait"

    def test_render_and_waterfall_smoke(self):
        registry, _ = _run_with_spans()
        records = registry.trace_records()
        text = attribution.build(records).render()
        assert "latency attribution" in text
        assert "queue_wait" in text or "decode" in text
        waterfall = render_waterfall(records, limit=2)
        assert "span waterfall: 2 slowest of 4 requests" in waterfall
        assert "decode" in waterfall

    def test_empty_trace_renders_gracefully(self):
        report = attribution.build([])
        assert report.requests == []
        assert "no finished requests" in report.render()
        assert render_waterfall([]) == (
            "span waterfall: no request spans recorded"
        )


class TestPrometheusRender:
    def test_families_and_suffixes(self):
        registry = TelemetryRegistry()
        registry.counter("reqs_total", "r0", "engine", "reqs").inc(5)
        registry.counter("reqs_total", "r1", "engine", "reqs").inc(7)
        registry.counter("migrations", "c0", "cluster").inc(2)
        registry.gauge("num_running_reqs", "r0", "engine").set(1.0, 3.0)
        registry.gauge("never_set", "r0", "engine")
        registry.histogram("ttft_seconds", "r0", "engine", "s").observe(0.02)
        text = registry.render_prometheus()
        assert text.endswith("\n")
        lines = text.splitlines()
        # Counters keep or gain the _total suffix.
        assert 'repro_reqs_total{layer="engine",scope="r0"} 5.0' in lines
        assert 'repro_reqs_total{layer="engine",scope="r1"} 7.0' in lines
        assert (
            'repro_migrations_total{layer="cluster",scope="c0"} 2.0'
            in lines
        )
        # One HELP/TYPE header per family, not per scope.
        assert lines.count("# TYPE repro_reqs_total counter") == 1
        assert "# TYPE repro_num_running_reqs gauge" in lines
        assert (
            'repro_num_running_reqs{layer="engine",scope="r0"} 3.0'
            in lines
        )
        # A gauge that never sampled is skipped entirely.
        assert not any("never_set" in line for line in lines)

    def test_histogram_exposition(self):
        registry = TelemetryRegistry()
        histogram = registry.histogram("ttft_seconds", "r0", "engine", "s")
        for value in (0.02, 0.02, 3.0):
            histogram.observe(value)
        lines = registry.render_prometheus().splitlines()
        assert "# TYPE repro_ttft_seconds histogram" in lines
        assert (
            'repro_ttft_seconds_bucket{layer="engine",scope="r0",'
            'le="0.05"} 2' in lines
        )
        assert (
            'repro_ttft_seconds_bucket{layer="engine",scope="r0",'
            'le="+Inf"} 3' in lines
        )
        assert (
            'repro_ttft_seconds_count{layer="engine",scope="r0"} 3'
            in lines
        )
        [total] = [
            line for line in lines
            if line.startswith('repro_ttft_seconds_sum')
        ]
        assert float(total.split()[-1]) == 3.04

    def test_empty_registry_renders_empty(self):
        assert TelemetryRegistry().render_prometheus() == ""
