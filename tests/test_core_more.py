"""Additional vAttention manager behaviours: slicing mode, accounting
identities, multi-request interleavings, eager targeting."""

import pytest

from repro.core.config import VAttentionConfig
from repro.core.vattention import VAttention
from repro.gpu.device import Device
from repro.gpu.spec import A100
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.units import GB, MB


def make(model=YI_6B, tp=1, batch=6, pg=2 * MB, budget=16 * GB, **flags):
    device = Device(A100, reserved_bytes=80 * GB - budget)
    config = VAttentionConfig(
        shard=ShardedModel(model, tp),
        max_batch_size=batch,
        page_group_size=pg,
        **flags,
    )
    return device, config, VAttention(device, config)


class TestSlicingMode:
    """The manager running the S8.2 tensor-slicing layout."""

    def test_two_tensors_lockstep(self):
        _, config, manager = make(
            tensor_slicing=True, eager_allocation=False
        )
        req = manager.alloc_reqid()
        seq = [0] * 6
        seq[req] = 100
        manager.step(seq)
        # One row = one 2MB page in K + one in V.
        assert config.row_bytes == 4 * MB
        assert manager.stats.map_calls == 2 * manager.stats.rows_mapped

    def test_sliced_block_size_drives_row_count(self):
        _, config, manager = make(
            tensor_slicing=True, eager_allocation=False
        )
        assert config.tokens_per_page_group == 64  # Table 10, Yi-6B TP-1
        req = manager.alloc_reqid()
        seq = [0] * 6
        seq[req] = 1_000
        manager.step(seq)
        assert manager.slots[req].mapped_rows == -(-1_000 // 64)

    def test_sliced_fragmentation_is_finer(self):
        # Same 100-token request wastes ~N times less under slicing.
        _, _, unsliced = make(eager_allocation=False)
        _, _, sliced = make(tensor_slicing=True, eager_allocation=False)
        for manager in (unsliced, sliced):
            req = manager.alloc_reqid()
            seq = [0] * 6
            seq[req] = 100
            manager.step(seq)
        assert (
            unsliced.internal_fragmentation_bytes
            > 10 * sliced.internal_fragmentation_bytes
        )


class TestAccountingIdentities:
    def test_rows_conserved(self):
        _, _, manager = make(eager_allocation=False)
        reqs = [manager.alloc_reqid() for _ in range(3)]
        seq = [0] * 6
        for i, req in enumerate(reqs):
            seq[req] = 3_000 * (i + 1)
        manager.step(seq)
        slot_rows = sum(s.mapped_rows for s in manager.slots)
        assert manager.free_rows + slot_rows == manager.total_rows

    def test_available_rows_identity(self):
        _, _, manager = make(eager_allocation=False)
        req = manager.alloc_reqid()
        seq = [0] * 6
        seq[req] = 5_000
        manager.step(seq)
        manager.free_reqid(req)
        assert manager.available_rows == (
            manager.free_rows + manager.cached_rows
            + manager.excess_active_rows
        )
        assert manager.cached_rows == manager.slots[req].mapped_rows

    def test_sync_seconds_accumulate(self):
        _, _, manager = make(
            eager_allocation=False, overlap_allocation=False
        )
        req = manager.alloc_reqid()
        total = 0.0
        for ctx in (2_048, 4_096, 6_144):
            seq = [0] * 6
            seq[req] = ctx
            manager.step(seq)
            total += manager.stats.last_step_sync_seconds
        assert manager.stats.sync_alloc_seconds == pytest.approx(total)

    def test_map_calls_are_tensor_multiples(self):
        _, config, manager = make(eager_allocation=False)
        req = manager.alloc_reqid()
        seq = [0] * 6
        seq[req] = 10_000
        manager.step(seq)
        assert manager.stats.map_calls % config.n_tensors == 0


class TestInterleavedRequests:
    def test_independent_growth(self):
        _, _, manager = make(eager_allocation=False)
        a = manager.alloc_reqid()
        b = manager.alloc_reqid()
        seq = [0] * 6
        seq[a] = 2_048
        manager.step(seq)
        seq[b] = 4_096
        manager.step(seq)
        seq[a] = 2_049
        manager.step(seq)
        assert manager.slots[a].mapped_rows == 2
        assert manager.slots[b].mapped_rows == 2

    def test_free_one_keeps_other_intact(self):
        _, _, manager = make(eager_allocation=False)
        a = manager.alloc_reqid()
        b = manager.alloc_reqid()
        seq = [0] * 6
        seq[a] = 4_096
        seq[b] = 4_096
        manager.step(seq)
        manager.free_reqid(a)
        seq_b = [0] * 6
        seq_b[b] = 6_000
        assert manager.step(seq_b) == 0
        assert manager.slots[b].mapped_rows == 3

    def test_batch_fill_and_drain(self):
        _, _, manager = make(batch=4, eager_allocation=False)
        reqs = [manager.alloc_reqid() for _ in range(4)]
        seq = [2_000] * 4
        manager.step(seq)
        for req in reqs:
            manager.free_reqid(req)
        again = [manager.alloc_reqid() for _ in range(4)]
        assert sorted(again) == sorted(reqs)
        # Every successor inherits pages: no allocations on re-prefill.
        maps_before = manager.stats.map_calls
        manager.step([2_000] * 4)
        assert manager.stats.map_calls == maps_before


class TestEagerTargeting:
    def test_eager_does_not_multiply_warm_slots(self):
        _, config, manager = make(eager_page_groups=4)
        req = manager.alloc_reqid()  # eager pre-warms the next candidate
        seq = [0] * 6
        seq[req] = 8_192  # 4 rows
        manager.step(seq)
        manager.free_reqid(req)
        manager.on_iteration_end(1.0)
        manager.on_iteration_end(1.0)
        # Exactly two warm slots exist: the eager candidate prepared at
        # alloc time (S6.1.2) and the freed request's cached slot —
        # further iterations must not keep warming additional slots.
        warm = [s for s in manager.slots if not s.active and s.mapped_rows]
        assert len(warm) == 2
        assert all(s.mapped_rows == 4 for s in warm)

    def test_eager_respects_free_pool(self):
        _, _, manager = make(
            budget=2 * GB, batch=2, eager_page_groups=1_000
        )
        manager.on_iteration_end(1.0)
        candidates = [s for s in manager.slots if not s.active]
        assert max(s.mapped_rows for s in candidates) <= manager.total_rows
