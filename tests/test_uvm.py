"""Unified-memory strawman (paper S8.1): semantics and limitations."""

import pytest

from repro.errors import OutOfPhysicalMemory, SchedulingError
from repro.gpu.phys import PhysicalMemoryPool
from repro.gpu.spec import A100
from repro.gpu.uvm import UVM_PAGE_SIZE, UvmKvRegion
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.serving.engine import EngineConfig, LLMEngine
from repro.units import GB, MB
from repro.workloads.traces import fixed_trace


def make_region(capacity=4 * GB, batch=4) -> UvmKvRegion:
    pool = PhysicalMemoryPool(capacity=capacity)
    shard = ShardedModel(YI_6B, 1)
    return UvmKvRegion(
        pool=pool,
        max_batch_size=batch,
        n_tensors=2 * shard.n_layers,
        bytes_per_token_per_tensor=(
            shard.kv_heads_per_worker * shard.head_dim * shard.dtype_bytes
        ),
    )


class TestTouchSemantics:
    def test_first_touch_materializes_pages(self):
        region = make_region()
        slot = region.acquire_slot()
        latency = region.touch(slot, 3_000)  # 2 rows at 2048 tokens/page
        assert region.committed_bytes == 2 * region.row_bytes
        assert latency > 0  # page faults are not free

    def test_second_touch_within_pages_is_free(self):
        region = make_region()
        slot = region.acquire_slot()
        region.touch(slot, 2_048)
        assert region.touch(slot, 2_048) == 0.0

    def test_pages_are_2mb(self):
        assert UVM_PAGE_SIZE == 2 * MB
        region = make_region()
        assert region.tokens_per_row == 2_048  # Yi-6B TP-1, like Table 8

    def test_shrinking_rejected(self):
        region = make_region()
        slot = region.acquire_slot()
        region.touch(slot, 1_000)
        with pytest.raises(SchedulingError):
            region.touch(slot, 500)

    def test_inactive_touch_rejected(self):
        region = make_region()
        with pytest.raises(SchedulingError):
            region.touch(0, 100)


class TestNoPartialFreeing:
    """The S8.1 limitation this backend exists to demonstrate."""

    def test_release_reclaims_nothing(self):
        region = make_region()
        slot = region.acquire_slot()
        region.touch(slot, 10_000)
        committed = region.committed_bytes
        assert region.release_slot(slot) == 0
        assert region.committed_bytes == committed  # still resident

    def test_committed_ratchets_across_slots(self):
        region = make_region(batch=2)
        first = region.acquire_slot()
        region.touch(first, 10_000)
        region.release_slot(first)
        # A different slot's touches add on top; the first slot's pages
        # never came back.
        second_id = None
        for slot in region.slots:
            if slot.touched_rows == 0:
                second_id = slot.slot_id
        second = region.acquire_slot()
        if second_id is not None and second == second_id:
            region.touch(second, 10_000)
            assert region.committed_bytes >= 2 * 5 * region.row_bytes

    def test_slot_reuse_is_the_only_relief(self):
        region = make_region()
        slot = region.acquire_slot()
        region.touch(slot, 10_000)
        region.release_slot(slot)
        reused = region.acquire_slot()
        assert reused == slot  # most-touched preferred
        # Re-touching the same virtual range faults nothing new.
        assert region.touch(reused, 10_000) == 0.0

    def test_oom_with_no_recourse(self):
        region = make_region(capacity=512 * MB)
        slot = region.acquire_slot()
        with pytest.raises(OutOfPhysicalMemory):
            region.touch(slot, 100_000)

    def test_destroy_is_the_only_full_release(self):
        region = make_region()
        slot = region.acquire_slot()
        region.touch(slot, 10_000)
        freed = region.destroy()
        assert freed > 0
        assert region.committed_bytes == 0
        with pytest.raises(SchedulingError):
            region.acquire_slot()


class TestUvmBackend:
    def test_engine_runs_on_uvm(self):
        engine = LLMEngine(
            EngineConfig(
                shard=ShardedModel(YI_6B, 1),
                gpu=A100,
                memory_backend="uvm",
                max_batch_size=4,
            )
        )
        engine.submit(fixed_trace(count=4, prompt_len=2_000, max_new_tokens=10))
        report = engine.run()
        assert len(report.finished_requests) == 4
        assert engine.memory.committed_bytes > 0

    def test_uvm_strands_memory_vattention_reclaims_it(self):
        # Two concurrent 16K requests spread their footprints across two
        # slots (~2GB). A later 30K request needs ~1.9GB: vAttention
        # reclaims the finished requests' pages and serves it; UVM's
        # pages are stranded in per-slot footprints it cannot free, so
        # the request never fits.
        def run(backend):
            engine = LLMEngine(
                EngineConfig(
                    shard=ShardedModel(YI_6B, 1),
                    gpu=A100,
                    memory_backend=backend,
                    max_batch_size=2,
                    kv_budget_bytes=int(2.5 * GB),
                    eager_allocation=False,
                )
            )
            engine.submit(fixed_trace(
                count=2, prompt_len=16_000, max_new_tokens=5,
                name=f"{backend}-small",
            ))
            engine.submit(fixed_trace(
                count=1, prompt_len=30_000, max_new_tokens=5,
                name=f"{backend}-big", arrivals=[1_000.0],
            ))
            report = engine.run()
            return len(report.finished_requests)

        assert run("vattention") == 3
        assert run("uvm") == 2  # the 30K request is never admissible
