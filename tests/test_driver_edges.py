"""Experiment-driver edge cases and helper functions."""

import pytest

from repro.errors import ReproError
from repro.experiments import (
    fig02_prefill_kernel_overhead,
    fig04_alloc_bandwidth_demand,
    fig08_decode_throughput,
    fig10_online_latency,
    fig13_deferred_reclamation,
    tab09_alloc_bandwidth,
)
from repro.experiments.prefill_model import prefill_breakdown
from repro.gpu.spec import A100, H100
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_34B, YI_6B
from repro.units import KB


class TestPrefillModel:
    def test_breakdown_components_sum(self):
        shard = ShardedModel(YI_6B, 1)
        b = prefill_breakdown("FA2_Paged", shard, A100, 16_384)
        assert b.total_seconds == pytest.approx(
            b.linear_seconds + b.attention_seconds
            + b.framework_seconds + b.alloc_seconds
        )
        assert b.throughput == pytest.approx(16_384 / b.total_seconds)

    def test_unknown_label_rejected(self):
        shard = ShardedModel(YI_6B, 1)
        with pytest.raises(ReproError):
            prefill_breakdown("NotASystem", shard, A100, 1_024)

    def test_paged_has_framework_overhead(self):
        shard = ShardedModel(YI_6B, 1)
        paged = prefill_breakdown("FI_Paged", shard, A100, 65_536)
        vattn = prefill_breakdown("FI_vAttention", shard, A100, 65_536)
        assert paged.framework_seconds > vattn.framework_seconds

    def test_hopper_prefill_faster(self):
        shard = ShardedModel(YI_6B, 1)
        a100 = prefill_breakdown("FA2_vAttention", shard, A100, 65_536)
        h100 = prefill_breakdown("FA2_vAttention", shard, H100, 65_536)
        assert h100.total_seconds < a100.total_seconds


class TestDriverParameters:
    def test_fig2_custom_contexts(self):
        rows = fig02_prefill_kernel_overhead.run(contexts=(2_048,))
        assert len(rows) == 1
        assert rows[0].context_len == 2_048

    def test_fig4_custom_models(self):
        rows = fig04_alloc_bandwidth_demand.run(
            models=((YI_34B, 2),), batches=(1, 64)
        )
        assert {r.model for r in rows} == {"Yi-34B"}
        assert len(rows) == 2

    def test_fig13_monotone_overheads(self):
        for row in fig13_deferred_reclamation.run(models=((YI_6B, 1),)):
            assert (
                row.deferred_seconds
                <= row.sync_2mb_seconds
                <= row.sync_64kb_seconds
            )

    def test_tab09_measured_not_constant(self):
        bw_small = tab09_alloc_bandwidth.measure_bandwidth(64 * KB)
        bw_large = tab09_alloc_bandwidth.measure_bandwidth(256 * KB)
        assert bw_large > bw_small


class TestFig8Helpers:
    def test_oom_rows_skipped_in_speedup(self):
        rows = [
            fig08_decode_throughput.Fig8Row("Yi-6B", "vLLM", 8, 100.0, 0.08),
            fig08_decode_throughput.Fig8Row(
                "Yi-6B", "FA2_vAttention", 8, 200.0, 0.04
            ),
            fig08_decode_throughput.Fig8Row(
                "Yi-6B", "FA2_vAttention", 32, None, None
            ),
        ]
        assert fig08_decode_throughput.max_speedup_over_vllm(
            rows, "Yi-6B"
        ) == pytest.approx(2.0)

    def test_no_points_raises(self):
        with pytest.raises(ReproError):
            fig08_decode_throughput.max_speedup_over_vllm([], "Yi-6B")


class TestFig10Helpers:
    @staticmethod
    def _cell(system, latencies, median):
        return fig10_online_latency.Fig10Cell(
            model="Yi-6B", qps=0.2, system=system, latencies=latencies,
            median_latency=median, p99_latency=max(latencies),
            median_ttft=median / 10.0, p99_ttft=max(latencies) / 10.0,
        )

    def test_cell_cdf_and_median(self):
        cell = self._cell("FA2_Paged", (10.0, 20.0, 30.0), median=20.0)
        assert cell.median_latency == 20.0
        cdf = cell.cdf()
        assert cdf[0] == (10.0, pytest.approx(1 / 3))
        assert cdf[-1] == (30.0, pytest.approx(1.0))

    def test_median_reduction_helper(self):
        cells = [
            self._cell("FA2_Paged", (100.0, 100.0), median=100.0),
            self._cell("FA2_vAttention", (60.0, 60.0), median=60.0),
        ]
        assert fig10_online_latency.median_reduction(
            cells, "Yi-6B", 0.2
        ) == pytest.approx(0.4)
