"""Golden-report scenarios proving the FCFS policy refactor is inert.

The scheduling subsystem (``repro.scheduling``) replaced the engine's
inline FCFS decisions with a pluggable policy. The contract of that
refactor is *byte identity*: with the default ``scheduler_policy="fcfs"``
an engine run must reproduce the pre-refactor engine's clock arithmetic
exactly — same iteration sequence, same latencies, same request
timestamps, down to the float repr.

``tests/golden/fcfs_reports.json`` was captured by running this module
standalone at the commit *before* the refactor::

    PYTHONPATH=src:tests python tests/fcfs_golden.py

and :mod:`tests.test_sched_policy` re-runs every scenario on the current
code and compares canonical serializations byte-for-byte. Regenerate the
golden only for a deliberate, understood behaviour change.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.gpu.spec import A100
from repro.metrics.collector import RunReport
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.serving.engine import EngineConfig, LLMEngine
from repro.workloads.arrival import bursty_arrivals, poisson_arrivals
from repro.workloads.traces import fixed_trace, shared_prefix_trace

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "fcfs_reports.json"
)


def _base_config(**overrides) -> EngineConfig:
    defaults = dict(
        shard=ShardedModel(YI_6B, 1),
        gpu=A100,
        memory_backend="vattention",
        max_batch_size=8,
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


def _monolithic() -> RunReport:
    """Plain vAttention FCFS serving under Poisson arrivals."""
    engine = LLMEngine(_base_config())
    trace = fixed_trace(
        count=12,
        prompt_len=3_000,
        max_new_tokens=40,
        arrivals=poisson_arrivals(qps=2.0, count=12, seed=71),
    )
    engine.submit(trace)
    return engine.run()


def _chunked() -> RunReport:
    """FCFS with Sarathi-style chunking through the legacy config knob."""
    engine = LLMEngine(_base_config(prefill_chunk_size=2_048))
    trace = fixed_trace(
        count=6,
        prompt_len=9_000,
        max_new_tokens=64,
        arrivals=bursty_arrivals(qps=2.0, count=6, seed=23),
    )
    engine.submit(trace)
    return engine.run()


def _paged() -> RunReport:
    """FCFS on the PagedAttention backend (paged kernels)."""
    engine = LLMEngine(
        _base_config(
            memory_backend="paged",
            prefill_kernel="fa2_paged",
            decode_kernel="fa2_paged",
            block_size=256,
        )
    )
    trace = fixed_trace(
        count=8,
        prompt_len=4_000,
        max_new_tokens=32,
        arrivals=poisson_arrivals(qps=3.0, count=8, seed=5),
    )
    engine.submit(trace)
    return engine.run()


def _prefix_cached() -> RunReport:
    """FCFS with the radix prefix cache on a shared-prefix trace."""
    engine = LLMEngine(_base_config(enable_prefix_cache=True))
    trace = shared_prefix_trace(
        count=16,
        sharing_factor=4,
        prefix_tokens=2_048,
        seed=913,
        arrivals=poisson_arrivals(qps=2.5, count=16, seed=41),
    )
    engine.submit(trace)
    return engine.run()


def _preempting() -> RunReport:
    """FCFS under memory pressure: preemptions and re-admissions."""
    from repro.units import GB

    engine = LLMEngine(
        _base_config(max_batch_size=6, kv_budget_bytes=1 * GB)
    )
    trace = fixed_trace(
        count=8,
        prompt_len=8_000,
        max_new_tokens=800,
        arrivals=poisson_arrivals(qps=4.0, count=8, seed=19),
    )
    engine.submit(trace)
    return engine.run()


#: Scenario name -> zero-argument runner returning a RunReport.
SCENARIOS = {
    "monolithic_vattention": _monolithic,
    "chunked_prefill": _chunked,
    "paged_backend": _paged,
    "prefix_cache": _prefix_cached,
    "memory_pressure": _preempting,
}


def canonicalize(report: RunReport) -> Dict:
    """Byte-stable serialization of everything timing-derived.

    Floats go through ``repr`` (shortest round-trip form), so two runs
    match iff every simulated timestamp matches exactly.
    """

    def num(value):
        return None if value is None else repr(float(value))

    requests: List[Dict] = []
    for request in report.requests:
        requests.append(
            {
                "id": request.request_id,
                "arrival": num(request.arrival_time),
                "admitted": num(request.admitted_time),
                "first_token": num(request.first_token_time),
                "finish": num(request.finish_time),
                "generated": request.generated,
                "prompt_len": request.prompt_len,
                "preemptions": request.preemptions,
                "cached_prefix_tokens": request.cached_prefix_tokens,
                "state": request.state.value,
            }
        )
    iterations: List[Dict] = []
    for record in report.metrics.iterations:
        iterations.append(
            {
                "start": num(record.start_time),
                "phase": record.phase,
                "batch": record.batch_size,
                "latency": num(record.latency),
                "alloc_sync": num(record.alloc_sync),
                "tokens": record.tokens,
            }
        )
    return {
        "start": num(report.start_time),
        "end": num(report.end_time),
        "requests": requests,
        "iterations": iterations,
    }


def capture() -> Dict[str, Dict]:
    """Run every scenario and canonicalize its report."""
    return {name: canonicalize(run()) for name, run in SCENARIOS.items()}


def main() -> None:
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    payload = capture()
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    total = sum(len(s["iterations"]) for s in payload.values())
    print(f"wrote {GOLDEN_PATH}: {len(payload)} scenarios, "
          f"{total} iterations")


if __name__ == "__main__":
    main()
