"""Golden-report scenarios proving the FCFS policy refactor is inert.

The scheduling subsystem (``repro.scheduling``) replaced the engine's
inline FCFS decisions with a pluggable policy. The contract of that
refactor is *byte identity*: with the default ``scheduler_policy="fcfs"``
an engine run must reproduce the pre-refactor engine's clock arithmetic
exactly — same iteration sequence, same latencies, same request
timestamps, down to the float repr.

``tests/golden/fcfs_reports.json`` was captured by running this module
standalone at the commit *before* the refactor::

    PYTHONPATH=src:tests python tests/fcfs_golden.py

and :mod:`tests.test_sched_policy` re-runs every scenario on the current
code and compares canonical serializations byte-for-byte. Regenerate the
golden only for a deliberate, understood behaviour change.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.gpu.spec import A100
from repro.metrics.collector import RunReport
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.serving.engine import EngineConfig, LLMEngine
from repro.workloads.arrival import bursty_arrivals, poisson_arrivals
from repro.workloads.traces import fixed_trace, shared_prefix_trace

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "fcfs_reports.json"
)


def _base_config(**overrides) -> EngineConfig:
    defaults = dict(
        shard=ShardedModel(YI_6B, 1),
        gpu=A100,
        memory_backend="vattention",
        max_batch_size=8,
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


def _monolithic(**config) -> RunReport:
    """Plain vAttention FCFS serving under Poisson arrivals."""
    engine = LLMEngine(_base_config(**config))
    trace = fixed_trace(
        count=12,
        prompt_len=3_000,
        max_new_tokens=40,
        arrivals=poisson_arrivals(qps=2.0, count=12, seed=71),
    )
    engine.submit(trace)
    return engine.run()


def _chunked(**config) -> RunReport:
    """FCFS with Sarathi-style chunking through the legacy config knob."""
    engine = LLMEngine(_base_config(prefill_chunk_size=2_048, **config))
    trace = fixed_trace(
        count=6,
        prompt_len=9_000,
        max_new_tokens=64,
        arrivals=bursty_arrivals(qps=2.0, count=6, seed=23),
    )
    engine.submit(trace)
    return engine.run()


def _paged(**config) -> RunReport:
    """FCFS on the PagedAttention backend (paged kernels)."""
    engine = LLMEngine(
        _base_config(
            memory_backend="paged",
            prefill_kernel="fa2_paged",
            decode_kernel="fa2_paged",
            block_size=256,
            **config,
        )
    )
    trace = fixed_trace(
        count=8,
        prompt_len=4_000,
        max_new_tokens=32,
        arrivals=poisson_arrivals(qps=3.0, count=8, seed=5),
    )
    engine.submit(trace)
    return engine.run()


def _prefix_cached(**config) -> RunReport:
    """FCFS with the radix prefix cache on a shared-prefix trace."""
    engine = LLMEngine(_base_config(enable_prefix_cache=True, **config))
    trace = shared_prefix_trace(
        count=16,
        sharing_factor=4,
        prefix_tokens=2_048,
        seed=913,
        arrivals=poisson_arrivals(qps=2.5, count=16, seed=41),
    )
    engine.submit(trace)
    return engine.run()


def _preempting(**config) -> RunReport:
    """FCFS under memory pressure: preemptions and re-admissions."""
    from repro.units import GB

    engine = LLMEngine(
        _base_config(max_batch_size=6, kv_budget_bytes=1 * GB, **config)
    )
    trace = fixed_trace(
        count=8,
        prompt_len=8_000,
        max_new_tokens=800,
        arrivals=poisson_arrivals(qps=4.0, count=8, seed=19),
    )
    engine.submit(trace)
    return engine.run()


#: Scenario name -> runner returning a RunReport. Runners forward
#: keyword overrides into the EngineConfig; the golden file captures
#: the legacy per-iteration loop, so byte-identity tests run them with
#: ``fast_forward=False`` while the equivalence tests run the same
#: scenarios with ``fast_forward=True`` and compare against the same
#: golden through :func:`summarize`.
SCENARIOS = {
    "monolithic_vattention": _monolithic,
    "chunked_prefill": _chunked,
    "paged_backend": _paged,
    "prefix_cache": _prefix_cached,
    "memory_pressure": _preempting,
}


def canonicalize(report: RunReport) -> Dict:
    """Byte-stable serialization of everything timing-derived.

    Floats go through ``repr`` (shortest round-trip form), so two runs
    match iff every simulated timestamp matches exactly.
    """

    def num(value):
        return None if value is None else repr(float(value))

    requests: List[Dict] = []
    for request in report.requests:
        requests.append(
            {
                "id": request.request_id,
                "arrival": num(request.arrival_time),
                "admitted": num(request.admitted_time),
                "first_token": num(request.first_token_time),
                "finish": num(request.finish_time),
                "generated": request.generated,
                "prompt_len": request.prompt_len,
                "preemptions": request.preemptions,
                "cached_prefix_tokens": request.cached_prefix_tokens,
                "state": request.state.value,
            }
        )
    iterations: List[Dict] = []
    for record in report.metrics.iterations:
        entry = {
            "start": num(record.start_time),
            "phase": record.phase,
            "batch": record.batch_size,
            "latency": num(record.latency),
            "alloc_sync": num(record.alloc_sync),
            "tokens": record.tokens,
        }
        # Only fast-forwarded stretches carry these keys, so legacy-loop
        # canonicalizations stay byte-compatible with the stored golden.
        if record.iterations != 1:
            entry["iterations"] = record.iterations
            entry["latencies"] = [num(lat) for lat in record.iteration_latencies]
        iterations.append(entry)
    return {
        "start": num(report.start_time),
        "end": num(report.end_time),
        "requests": requests,
        "iterations": iterations,
    }


def summarize(canonical: Dict) -> Dict:
    """Reduce a canonical report to its grouping-invariant content.

    Everything here must be *identical* between a legacy per-iteration
    run and a fast-forwarded run of the same scenario: the full
    request-level timing data, the report window, and per-phase totals.
    Latency sums expand fast-forwarded stretches to their per-iteration
    values and accumulate left-to-right in record order — the identical
    float additions of the per-iteration path — so the totals match
    bit-for-bit, not approximately.
    """
    phases: Dict[str, Dict] = {}
    for record in canonical["iterations"]:
        totals = phases.setdefault(
            record["phase"],
            {"latency": 0.0, "alloc_sync": 0.0, "tokens": 0, "iterations": 0},
        )
        for latency in record.get("latencies", [record["latency"]]):
            totals["latency"] += float(latency)
        totals["alloc_sync"] += float(record["alloc_sync"])
        totals["tokens"] += record["tokens"]
        totals["iterations"] += record.get("iterations", 1)
    for totals in phases.values():
        totals["latency"] = repr(totals["latency"])
        totals["alloc_sync"] = repr(totals["alloc_sync"])
    return {
        "start": canonical["start"],
        "end": canonical["end"],
        "requests": canonical["requests"],
        "phases": phases,
    }


def iteration_series(canonical: Dict) -> List:
    """Expand a canonical report to one (phase, latency) per iteration.

    Fast-forwarded stretches expand through their stored per-iteration
    latencies, so a fast run's series must equal the legacy run's
    entry for entry — the strictest grouping-invariant comparison.
    """
    series: List = []
    for record in canonical["iterations"]:
        for latency in record.get("latencies", [record["latency"]]):
            series.append((record["phase"], latency))
    return series


def capture() -> Dict[str, Dict]:
    """Run every scenario on the legacy loop and canonicalize it."""
    return {
        name: canonicalize(run(fast_forward=False))
        for name, run in SCENARIOS.items()
    }


def main() -> None:
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    payload = capture()
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    total = sum(len(s["iterations"]) for s in payload.values())
    print(f"wrote {GOLDEN_PATH}: {len(payload)} scenarios, "
          f"{total} iterations")


if __name__ == "__main__":
    main()
