"""Decode fast-forwarding is invisible in every report.

Two layers of enforcement:

* The FCFS golden scenarios (captured from the legacy per-iteration
  loop, ``tests/golden/fcfs_reports.json``) re-run with
  ``fast_forward=True`` must reproduce the golden's request-level
  timing byte-for-byte and its per-phase totals bit-for-bit — only the
  record *grouping* may differ.
* An on/off sweep over every engine-driven experiment in the catalogue:
  each driver runs once with fast-forwarding and once without (flipped
  through the module default), and the experiment's own output rows
  must compare equal — floats included, no tolerance. Experiments that
  never construct a serving engine (pure cost-model tables) have
  nothing to sweep; the two that pin ``fast_forward=False`` internally
  (fig12, ext-chunked: their *subject* is the per-iteration series)
  still run to prove the pin holds.
"""

import dataclasses
import json

import pytest

import fcfs_golden
import repro.serving.engine as engine_module
from repro.cluster.autoscaler import AUTOSCALER_POLICIES
from repro.cluster.engine import ClusterEngine
from repro.cluster.router import policy_names
from repro.experiments import (
    ext_autoscale,
    ext_cluster_router,
    ext_prefix_cache,
    ext_sched_policy,
    ext_swap_policy,
    ext_uvm_limitations,
    fig08_decode_throughput,
    fig09_offline_throughput,
    fig10_online_latency,
    fig11_fa3_portability,
    fig12_overlap_ablation,
    fig15_max_batch_size,
)
from repro.models.zoo import YI_6B
from repro.units import MB


# ----------------------------------------------------------------------
# Golden scenarios with the fast path on
# ----------------------------------------------------------------------
class TestGoldenEquivalence:
    @pytest.fixture(scope="class")
    def golden(self):
        with open(fcfs_golden.GOLDEN_PATH) as handle:
            return json.load(handle)

    @pytest.mark.parametrize("scenario", sorted(fcfs_golden.SCENARIOS))
    def test_fast_forward_matches_golden(self, golden, scenario):
        live = fcfs_golden.canonicalize(
            fcfs_golden.SCENARIOS[scenario](fast_forward=True)
        )
        assert fcfs_golden.summarize(live) == fcfs_golden.summarize(
            golden[scenario]
        )
        # Strongest form: the per-iteration latency series (stretches
        # expanded through their stored values) is byte-identical to
        # the legacy loop's, entry for entry.
        assert fcfs_golden.iteration_series(live) == (
            fcfs_golden.iteration_series(golden[scenario])
        )

    @pytest.mark.parametrize("scenario", sorted(fcfs_golden.SCENARIOS))
    def test_fast_forward_aggregates_records(self, golden, scenario):
        """The fast path must actually engage — fewer records than
        iterations — otherwise the equivalence above proves nothing."""
        live = fcfs_golden.canonicalize(
            fcfs_golden.SCENARIOS[scenario](fast_forward=True)
        )
        iterations = sum(
            r.get("iterations", 1) for r in live["iterations"]
        )
        assert iterations == len(golden[scenario]["iterations"])
        assert len(live["iterations"]) < iterations


# ----------------------------------------------------------------------
# The experiment-catalogue sweep
# ----------------------------------------------------------------------
#: Engine-driven catalogue entries, reduced to test scale. Catalogue
#: entries absent here run no serving engine (kernel/cost-model tables:
#: fig02-04, fig07, fig13, fig14, tab03-tab10, ext-sharing,
#: ext-large-models) — there is no iteration loop to fast-forward.
SWEEP = {
    "fig08": lambda: fig08_decode_throughput.run(
        models=[(YI_6B, 1)], batches=(1, 16), decode_iterations=60
    ),
    "fig09": lambda: fig09_offline_throughput.run(
        models=[(YI_6B, 1)], request_count=12
    ),
    "fig10": lambda: fig10_online_latency.run(
        grid=[(YI_6B, (2.0,))],
        systems=("FA2_Paged", "FA2_vAttention"),
        request_count=40,
    ),
    "fig11": lambda: fig11_fa3_portability.run(
        models=[(YI_6B, 1)], request_count=10
    ),
    "fig12": lambda: fig12_overlap_ablation.run(decode_iterations=80),
    "fig15": lambda: fig15_max_batch_size.run(
        models=[(YI_6B, 1)], page_group_sizes=(2 * MB,), request_count=24
    ),
    "ext-prefix-cache": lambda: ext_prefix_cache.run(sharing_factors=(4,)),
    "ext-sched-policy": lambda: ext_sched_policy.run(count=40, qps=6.0),
    "ext-swap": lambda: ext_swap_policy.run(prompts=(8_192,)),
    "ext-uvm": lambda: ext_uvm_limitations.run(request_count=60, qps=6.0),
    "ext-cluster-router": lambda: ext_cluster_router.run(
        replica_counts=(2,),
        policies=("round_robin", "cache_aware"),
        sharing_factors=(4,),
        count=24,
        qps=8.0,
    ),
}


class TestCatalogueSweep:
    @pytest.mark.parametrize("name", sorted(SWEEP))
    def test_identical_on_and_off(self, name, monkeypatch):
        monkeypatch.setattr(engine_module, "DEFAULT_FAST_FORWARD", True)
        fast = SWEEP[name]()
        monkeypatch.setattr(engine_module, "DEFAULT_FAST_FORWARD", False)
        legacy = SWEEP[name]()
        assert fast == legacy


# ----------------------------------------------------------------------
# The cluster-catalogue sweep (joint-horizon fleet loop on vs off)
# ----------------------------------------------------------------------
# Every cluster-driven experiment configuration, at test scale: the
# three routing policies, the disaggregated prefill/decode split, and
# one fleet per autoscaler policy. ``ClusterConfig.fast_forward``
# follows the same module default the engines read, so one flip drives
# both the fleet loop and every replica's decode fast-forwarding.
CLUSTER_COUNT = 24
CLUSTER_QPS = 8.0


def _router_case(policy):
    def case():
        return ext_cluster_router.serve(
            2, policy, sharing_factor=4, count=CLUSTER_COUNT, qps=CLUSTER_QPS
        )

    return case


def _disagg_case(interconnect):
    def case():
        cluster = ext_cluster_router.build_cluster(
            4,
            "cache_aware",
            disaggregated=True,
            n_prefill_replicas=2,
            interconnect=interconnect,
        )
        cluster.submit(
            ext_cluster_router.cluster_trace(
                count=CLUSTER_COUNT, sharing_factor=4, qps=CLUSTER_QPS
            )
        )
        return cluster.run()

    return case


def _autoscale_case(fleet):
    def case():
        return ext_autoscale.serve(fleet, count=160, qps=4.0)

    return case


def _windowed_case(fleet, policy):
    """An elastic fleet routed by ``policy`` instead of the autoscale
    experiment's baked-in ``least_outstanding_tokens``.

    These are the arrival-window fast paths under scale lifecycle:
    state-aware policies route whole windows against persistent
    analytic replica views that must survive (or be correctly replaced
    across) scale-ups, drains, and SCALE_DECIDE window splits."""

    def case():
        base = ext_autoscale.build_fleet(fleet).config
        cluster = ClusterEngine(
            dataclasses.replace(base, routing_policy=policy)
        )
        cluster.submit(
            ext_cluster_router.cluster_trace(
                count=160,
                sharing_factor=4,
                prefix_tokens=ext_autoscale.PREFIX_TOKENS,
                qps=4.0,
            )
        )
        return cluster.run()

    return case


CLUSTER_SWEEP = {
    **{
        f"router:{policy}": _router_case(policy) for policy in policy_names()
    },
    "disagg:nvlink": _disagg_case("nvlink"),
    "disagg:pcie": _disagg_case("pcie"),
    "autoscale:static_min": _autoscale_case("static_min"),
    "autoscale:queue_depth": _autoscale_case("queue_depth"),
    "autoscale:sla": _autoscale_case("sla"),
    **{
        f"windowed:{fleet}:{policy}": _windowed_case(fleet, policy)
        for fleet in ("queue_depth", "sla")
        for policy in ("round_robin", "cache_aware")
    },
}


def _cluster_fingerprint(report):
    """Request-level exactness: every per-request timing, byte for byte,
    plus the fleet-level aggregates a report exposes."""
    return (
        repr(report.end_time),
        report.n_replicas,
        report.migrations,
        report.migrated_bytes,
        repr(report.migration_seconds),
        repr(report.replica_seconds),
        report.peak_serving,
        len(report.scale_events),
        tuple(
            (
                record.request_id,
                record.replica,
                record.decode_replica,
                repr(record.ttft),
                repr(record.e2e_latency),
                repr(record.serve_request.finish_time),
            )
            for record in sorted(
                report.records, key=lambda record: record.request_id
            )
        ),
    )


class TestClusterSweep:
    @pytest.mark.parametrize("name", sorted(CLUSTER_SWEEP))
    def test_identical_on_and_off(self, name, monkeypatch):
        monkeypatch.setattr(engine_module, "DEFAULT_FAST_FORWARD", True)
        fast = _cluster_fingerprint(CLUSTER_SWEEP[name]())
        monkeypatch.setattr(engine_module, "DEFAULT_FAST_FORWARD", False)
        legacy = _cluster_fingerprint(CLUSTER_SWEEP[name]())
        assert fast == legacy

    def test_covers_every_routing_policy(self):
        swept = {
            name.split(":", 1)[1]
            for name in CLUSTER_SWEEP
            if name.startswith("router:")
        }
        assert swept == set(policy_names())

    def test_covers_router_by_autoscaler_matrix(self):
        """Every routing policy runs under every autoscaler policy
        somewhere in the sweep: router:* pins static fleets, the
        autoscale:* shapes pin ``least_outstanding_tokens`` under each
        elastic autoscaler, and windowed:* fills in the remaining
        elastic x policy cells."""
        covered = set()
        for policy in policy_names():
            covered.add(("static", policy))  # router:<policy>
        for fleet in ("static_min", "queue_depth", "sla"):
            autoscaler = ext_autoscale.FLEETS[fleet][0]
            covered.add((autoscaler, "least_outstanding_tokens"))
        for name in CLUSTER_SWEEP:
            if not name.startswith("windowed:"):
                continue
            _, fleet, policy = name.split(":")
            covered.add((ext_autoscale.FLEETS[fleet][0], policy))
        wanted = {
            (autoscaler, policy)
            for autoscaler in AUTOSCALER_POLICIES
            for policy in policy_names()
        }
        assert wanted <= covered

    def test_covers_every_autoscaler_policy(self):
        swept = {
            name.split(":", 1)[1]
            for name in CLUSTER_SWEEP
            if name.startswith("autoscale:")
        }
        policies = {ext_autoscale.FLEETS[fleet][0] for fleet in swept}
        assert policies == set(AUTOSCALER_POLICIES)

    def test_covers_every_cluster_driver(self):
        """A new cluster-driven experiment module must join the sweep."""
        import pathlib

        import repro.experiments

        root = pathlib.Path(repro.experiments.__file__).parent
        drivers = {
            path.stem
            for path in root.glob("*.py")
            if "ClusterEngine(" in path.read_text()
        }
        assert drivers == {"ext_cluster_router", "ext_autoscale"}
