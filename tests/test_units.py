"""Unit and formatting helpers."""

import pytest

from repro.units import (
    GB,
    KB,
    MB,
    align_up,
    ceil_div,
    fmt_bytes,
    fmt_seconds,
    is_aligned,
    ms,
    to_ms,
    to_us,
    us,
)


class TestConstants:
    def test_binary_units(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    def test_time_round_trip(self):
        assert to_us(us(40)) == pytest.approx(40)
        assert to_ms(ms(5)) == pytest.approx(5)

    def test_us_is_seconds(self):
        assert us(1_000_000) == pytest.approx(1.0)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert ceil_div(9, 4) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 4) == 0

    def test_rejects_nonpositive_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)


class TestAlignment:
    def test_align_up_exact(self):
        assert align_up(4096, 4096) == 4096

    def test_align_up_rounds(self):
        assert align_up(4097, 4096) == 8192

    def test_is_aligned(self):
        assert is_aligned(2 * MB, 64 * KB)
        assert not is_aligned(2 * MB + 1, 64 * KB)

    def test_is_aligned_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            is_aligned(10, 0)


class TestFormatting:
    def test_fmt_bytes_mb(self):
        assert fmt_bytes(2 * MB) == "2.0MB"

    def test_fmt_bytes_small(self):
        assert fmt_bytes(512) == "512.0B"

    def test_fmt_bytes_tb(self):
        assert fmt_bytes(3 * 1024 * GB) == "3.0TB"

    def test_fmt_seconds_us(self):
        assert fmt_seconds(40e-6) == "40.0us"

    def test_fmt_seconds_ms(self):
        assert fmt_seconds(5e-3) == "5.0ms"

    def test_fmt_seconds_s(self):
        assert fmt_seconds(2.5) == "2.50s"
