"""GPU specs, registry, and Device composition."""

import pytest

from repro.errors import ConfigError
from repro.gpu.device import Device, make_devices
from repro.gpu.spec import (
    A100,
    CUDA_VMM_GRANULARITY,
    DRIVER_PAGE_GROUP_SIZES,
    H100,
    GpuSpec,
    get_gpu,
    register_gpu,
    validate_page_group_size,
)
from repro.units import GB, KB, MB, TB


class TestSpecs:
    def test_a100_capacity(self):
        assert A100.memory_bytes == 80 * GB
        assert A100.architecture == "ampere"

    def test_h100_is_hopper(self):
        assert H100.architecture == "hopper"
        assert H100.peak_fp16_flops > A100.peak_fp16_flops
        assert H100.hbm_bandwidth > A100.hbm_bandwidth

    def test_va_space_is_abundant(self):
        # S5.1: 128TB of user VA per process.
        assert A100.va_space_bytes == 128 * TB

    def test_registry_lookup(self):
        assert get_gpu("A100-80GB") is A100
        with pytest.raises(ConfigError):
            get_gpu("V100")

    def test_register_custom(self):
        custom = GpuSpec(
            name="TEST-GPU",
            memory_bytes=16 * GB,
            peak_fp16_flops=1e12,
            hbm_bandwidth=1e11,
        )
        register_gpu(custom)
        assert get_gpu("TEST-GPU") is custom

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            GpuSpec(name="bad", memory_bytes=0,
                    peak_fp16_flops=1e12, hbm_bandwidth=1e11)

    def test_page_group_validation(self):
        assert validate_page_group_size(64 * KB) == 64 * KB
        assert validate_page_group_size(2 * MB) == 2 * MB
        with pytest.raises(ConfigError):
            validate_page_group_size(4 * KB)

    def test_cuda_granularity_is_2mb(self):
        assert CUDA_VMM_GRANULARITY == 2 * MB
        assert 2 * MB not in DRIVER_PAGE_GROUP_SIZES


class TestDevice:
    def test_reserved_reduces_budget(self):
        device = Device(A100, reserved_bytes=20 * GB)
        assert device.kv_budget == 60 * GB

    def test_by_name(self):
        assert Device("H100-80GB").spec is H100

    def test_reservation_bounds(self):
        with pytest.raises(ConfigError):
            Device(A100, reserved_bytes=-1)
        with pytest.raises(ConfigError):
            Device(A100, reserved_bytes=80 * GB)

    def test_driver_factory(self):
        device = Device(A100)
        driver = device.driver(64 * KB)
        assert driver.page_group_size == 64 * KB

    def test_make_devices_share_clock(self):
        devices = make_devices(A100, 2, reserved_bytes_per_gpu=1 * GB)
        assert devices[0].clock is devices[1].clock
        assert len(devices) == 2

    def test_make_devices_rejects_zero(self):
        with pytest.raises(ConfigError):
            make_devices(A100, 0)
