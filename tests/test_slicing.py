"""Tensor slicing (S8.2) math and kernel compatibility."""

import pytest

from repro.core.slicing import (
    block_size_tokens,
    fragmentation_reduction_factor,
    sliced_config,
    supports_tensor_slicing,
    table10_row,
)
from repro.errors import ConfigError
from repro.models.shard import ShardedModel
from repro.models.zoo import LLAMA3_8B, YI_34B, YI_6B
from repro.units import MB


class TestBlockSizes:
    """Table 10 anchors."""

    def test_yi6b_tp1(self):
        shard = ShardedModel(YI_6B, 1)
        assert block_size_tokens(shard, sliced=False) == 2048
        assert block_size_tokens(shard, sliced=True) == 64

    def test_llama_tp2(self):
        shard = ShardedModel(LLAMA3_8B, 2)
        assert block_size_tokens(shard, sliced=False) == 2048
        assert block_size_tokens(shard, sliced=True) == 64

    def test_yi34b_tp2(self):
        shard = ShardedModel(YI_34B, 2)
        assert block_size_tokens(shard, sliced=False) == 2048
        assert block_size_tokens(shard, sliced=True) == 34

    def test_reduction_is_layer_count(self):
        shard = ShardedModel(YI_6B, 1)
        assert fragmentation_reduction_factor(shard) == 32
        row = table10_row(shard)
        assert row["without_slicing"] // row["with_slicing"] == 32


class TestSlicedConfig:
    def test_two_tensors(self):
        config = sliced_config(ShardedModel(YI_6B, 1), max_batch_size=8)
        assert config.n_tensors == 2
        assert config.tensor_slicing

    def test_per_token_bytes_span_all_layers(self):
        shard = ShardedModel(YI_6B, 1)
        config = sliced_config(shard, max_batch_size=8)
        assert config.bytes_per_token_per_tensor == (
            shard.n_layers * shard.kv_heads_per_worker
            * shard.head_dim * shard.dtype_bytes
        )

    def test_total_virtual_matches_unsliced(self):
        # Slicing reorganizes the same bytes: 2 big tensors vs 2N small.
        from repro.core.config import VAttentionConfig

        shard = ShardedModel(YI_6B, 1)
        sliced = sliced_config(shard, max_batch_size=8)
        unsliced = VAttentionConfig(
            shard=shard, max_batch_size=8, page_group_size=2 * MB
        )
        assert sliced.total_virtual_bytes == pytest.approx(
            unsliced.total_virtual_bytes, rel=0.01
        )

    def test_row_bytes_smaller(self):
        # One row (page-group in each tensor) is 2 pages, not 2N pages.
        config = sliced_config(ShardedModel(YI_6B, 1), max_batch_size=8)
        assert config.row_bytes == 2 * 2 * MB


class TestKernelCompatibility:
    def test_fa2_supports_strides(self):
        assert supports_tensor_slicing("FlashAttention-2")
        assert supports_tensor_slicing("FlashAttention-3")

    def test_early_flashinfer_does_not(self):
        # The reason the paper added small pages to the driver instead
        # of relying on slicing alone (S8.2).
        assert not supports_tensor_slicing("FlashInfer")
        assert not supports_tensor_slicing("vLLM")

    def test_unknown_library(self):
        with pytest.raises(ConfigError):
            supports_tensor_slicing("Triton")
