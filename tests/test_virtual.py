"""Virtual address space and mapping invariants."""

import pytest

from repro.errors import (
    AccessError,
    InvalidAddress,
    MappingError,
    OutOfVirtualMemory,
)
from repro.gpu.phys import PhysicalMemoryPool
from repro.gpu.virtual import VirtualAddressSpace
from repro.units import GB, KB, MB


@pytest.fixture
def space() -> VirtualAddressSpace:
    return VirtualAddressSpace(size=64 * GB)


@pytest.fixture
def pool() -> PhysicalMemoryPool:
    return PhysicalMemoryPool(capacity=1 * GB)


class TestReserve:
    def test_reserve_carves_range(self, space):
        reservation = space.reserve(16 * MB)
        assert reservation.size == 16 * MB
        assert space.reserved_bytes == 16 * MB

    def test_reservations_do_not_overlap(self, space):
        a = space.reserve(16 * MB)
        b = space.reserve(16 * MB)
        assert a.end <= b.base or b.end <= a.base

    def test_never_address_zero(self, space):
        assert space.reserve(2 * MB).base > 0

    def test_exhaustion_raises(self):
        tiny = VirtualAddressSpace(size=8 * MB)
        tiny.reserve(4 * MB)
        with pytest.raises(OutOfVirtualMemory):
            tiny.reserve(4 * MB)

    def test_unaligned_size_rejected(self, space):
        with pytest.raises(InvalidAddress):
            space.reserve(3 * MB + 1)

    def test_free_requires_no_mappings(self, space, pool):
        reservation = space.reserve(4 * MB)
        reservation.map(0, pool.allocate(2 * MB))
        with pytest.raises(MappingError):
            space.free(reservation)
        reservation.unmap(0)
        space.free(reservation)
        assert space.freed_bytes == 4 * MB

    def test_find(self, space):
        reservation = space.reserve(4 * MB)
        assert space.find(reservation.base + 100) is reservation
        with pytest.raises(InvalidAddress):
            space.find(reservation.end + 10 * MB)


class TestMapping:
    def test_map_and_query(self, space, pool):
        reservation = space.reserve(8 * MB)
        handle = pool.allocate(2 * MB)
        reservation.map(2 * MB, handle)
        assert reservation.mapped_bytes == 2 * MB
        assert reservation.mapping_at(2 * MB).handle == handle
        assert reservation.mapping_at(2 * MB - 1) is None

    def test_double_map_rejected(self, space, pool):
        reservation = space.reserve(8 * MB)
        reservation.map(0, pool.allocate(2 * MB))
        with pytest.raises(MappingError):
            reservation.map(0, pool.allocate(2 * MB))

    def test_overlapping_map_rejected(self, space, pool):
        reservation = space.reserve(8 * MB)
        reservation.map(0, pool.allocate(4 * MB))
        with pytest.raises(MappingError):
            reservation.map(2 * MB, pool.allocate(2 * MB))
        # offset 2MB lies inside the existing 4MB mapping

    def test_unaligned_offset_rejected(self, space, pool):
        reservation = space.reserve(8 * MB)
        with pytest.raises(MappingError):
            reservation.map(1 * MB, pool.allocate(2 * MB))

    def test_out_of_range_rejected(self, space, pool):
        reservation = space.reserve(4 * MB)
        with pytest.raises(InvalidAddress):
            reservation.map(4 * MB, pool.allocate(2 * MB))

    def test_unmap_returns_mapping(self, space, pool):
        reservation = space.reserve(4 * MB)
        handle = pool.allocate(2 * MB)
        reservation.map(0, handle)
        assert reservation.unmap(0).handle == handle
        assert reservation.mapped_bytes == 0

    def test_unmap_missing_offset_raises(self, space):
        reservation = space.reserve(4 * MB)
        with pytest.raises(MappingError):
            reservation.unmap(0)

    def test_unmap_all(self, space, pool):
        reservation = space.reserve(8 * MB)
        for offset in (0, 2 * MB, 4 * MB):
            reservation.map(offset, pool.allocate(2 * MB))
        assert len(reservation.unmap_all()) == 3
        assert reservation.mapping_count == 0


class TestCoverage:
    def test_mapped_extent_contiguous(self, space, pool):
        reservation = space.reserve(8 * MB)
        reservation.map(0, pool.allocate(2 * MB))
        reservation.map(2 * MB, pool.allocate(2 * MB))
        assert reservation.mapped_extent_from(0) == 4 * MB

    def test_mapped_extent_stops_at_hole(self, space, pool):
        reservation = space.reserve(8 * MB)
        reservation.map(0, pool.allocate(2 * MB))
        reservation.map(4 * MB, pool.allocate(2 * MB))
        assert reservation.mapped_extent_from(0) == 2 * MB

    def test_mapped_extent_from_middle(self, space, pool):
        reservation = space.reserve(8 * MB)
        reservation.map(0, pool.allocate(4 * MB))
        assert reservation.mapped_extent_from(1 * MB) == 3 * MB

    def test_is_range_backed(self, space, pool):
        reservation = space.reserve(8 * MB)
        reservation.map(0, pool.allocate(2 * MB))
        assert reservation.is_range_backed(0, 2 * MB)
        assert not reservation.is_range_backed(0, 2 * MB + 1)
        assert reservation.is_range_backed(64 * KB, 0)

    def test_access_fault_on_hole(self, space, pool):
        reservation = space.reserve(8 * MB)
        reservation.map(0, pool.allocate(2 * MB))
        reservation.check_access(0, 2 * MB)
        with pytest.raises(AccessError):
            reservation.check_access(0, 2 * MB + 1)

    def test_access_outside_reservation(self, space):
        reservation = space.reserve(4 * MB)
        with pytest.raises(InvalidAddress):
            reservation.check_access(3 * MB, 2 * MB)
