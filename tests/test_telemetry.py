"""The telemetry registry, its engine bindings, and the off-path.

Three layers of coverage:

* Registry unit tests — instrument creation is get-or-create and
  kind-checked, counters only go up, histogram percentiles use the
  shared linear-interpolation estimator, and events + gauge samples
  share one sequence counter (the total order the trace checker
  replays).
* The install point — ``enabled()`` restores whatever was active
  before, including nesting.
* Instrumented runs — an experiment produces identical rows with
  telemetry on and off (instruments observe, never perturb), and the
  decode fast path contributes the same counter totals as the legacy
  per-iteration loop while populating the stretch histogram.
"""

import json

import pytest

import repro.serving.engine as engine_module
from repro.errors import ConfigError
from repro.experiments import ext_sched_policy, fig08_decode_throughput
from repro.metrics.dashboard import render_dashboard, render_json
from repro.metrics.telemetry import (
    Gauge,
    TelemetryRegistry,
    active,
    enabled,
    install,
    uninstall,
)
from repro.models.zoo import YI_6B


class TestRegistry:
    def test_counter_get_or_create(self):
        registry = TelemetryRegistry()
        counter = registry.counter("reqs_total", "r0", "engine")
        counter.inc()
        counter.inc(2.0)
        assert registry.counter("reqs_total", "r0") is counter
        assert counter.value == 3.0

    def test_counters_only_go_up(self):
        registry = TelemetryRegistry()
        with pytest.raises(ConfigError):
            registry.counter("reqs_total").inc(-1.0)

    def test_kind_clash_rejected(self):
        registry = TelemetryRegistry()
        registry.counter("token_usage", "r0")
        with pytest.raises(ConfigError):
            registry.gauge("token_usage", "r0")

    def test_scope_qualifies_key(self):
        registry = TelemetryRegistry()
        a = registry.gauge("num_running_reqs", "r0")
        b = registry.gauge("num_running_reqs", "r1")
        assert a is not b
        assert a.spec.key == "num_running_reqs[r0]"
        assert registry.get("num_running_reqs", "r1") is b
        assert registry.get("num_running_reqs", "r7") is None

    def test_gauge_series(self):
        gauge = TelemetryRegistry().gauge("token_usage")
        assert gauge.last is None
        gauge.set(1.0, 0.25)
        gauge.set(2.0, 0.75)
        assert gauge.last == 0.75
        assert gauge.series() == [0.25, 0.75]

    def test_histogram_percentile_interpolation(self):
        histogram = TelemetryRegistry().histogram("ttft_seconds")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        # The shared estimator: rank = q/100 * (n-1), linearly
        # interpolated between the bracketing order statistics.
        assert histogram.percentile(50.0) == pytest.approx(2.5)
        assert histogram.percentile(25.0) == pytest.approx(1.75)
        assert histogram.percentile(0.0) == 1.0
        assert histogram.percentile(100.0) == 4.0
        assert histogram.mean() == pytest.approx(2.5)
        assert histogram.count == 4
        assert histogram.total == 10.0

    def test_histogram_empty_contract(self):
        histogram = TelemetryRegistry().histogram("ttft_seconds")
        with pytest.raises(ValueError):
            histogram.percentile(50.0)
        with pytest.raises(ValueError):
            histogram.mean()
        assert histogram.summary() is None

    def test_histogram_summary(self):
        histogram = TelemetryRegistry().histogram("e2e_latency_seconds")
        histogram.observe(3.0)
        summary = histogram.summary()
        assert summary == {"count": 1.0, "mean": 3.0, "p50": 3.0, "p99": 3.0}


class TestSequencing:
    def test_events_and_samples_share_one_sequence(self):
        registry = TelemetryRegistry()
        registry.emit(0.0, "request_admitted", scope="r0", request="a")
        registry.gauge("num_running_reqs", "r0").set(0.5, 1.0)
        registry.emit(1.0, "request_finished", scope="r0", request="a")
        records = registry.trace_records()
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert [r["event"] for r in records] == [
            "request_admitted", "sample", "request_finished",
        ]
        sample = records[1]
        assert sample["metric"] == "num_running_reqs"
        assert sample["scope"] == "r0"
        assert sample["value"] == 1.0
        assert sample["time"] == 0.5

    def test_write_jsonl_round_trips(self, tmp_path):
        registry = TelemetryRegistry()
        registry.emit(0.0, "request_admitted", scope="r0", request="a")
        registry.gauge("batch_size", "r0").set(0.25, 2.0)
        path = tmp_path / "trace.jsonl"
        count = registry.write_jsonl(str(path))
        assert count == 2
        lines = path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == (
            registry.trace_records()
        )

    def test_to_json_shapes(self):
        registry = TelemetryRegistry()
        registry.counter("reqs_total", "r0", "engine", "reqs").inc(5)
        registry.emit(0.0, "request_admitted", scope="r0", request="a")
        document = registry.to_json()
        assert document["events"] == 1
        assert "trace" not in document
        [entry] = document["metrics"]
        assert entry["name"] == "reqs_total"
        assert entry["value"] == 5.0
        with_trace = registry.to_json(include_events=True)
        assert len(with_trace["trace"]) == 1
        json.dumps(with_trace)  # must be serializable as-is


class TestInstallPoint:
    def test_enabled_restores_previous(self):
        assert active() is None
        with enabled() as outer:
            assert active() is outer
            with enabled() as inner:
                assert inner is not outer
                assert active() is inner
            assert active() is outer
        assert active() is None

    def test_enabled_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with enabled():
                raise RuntimeError("boom")
        assert active() is None

    def test_install_uninstall(self):
        registry = TelemetryRegistry()
        try:
            assert install(registry) is registry
            assert active() is registry
        finally:
            uninstall()
        assert active() is None


def _counters(registry):
    return {
        instrument.spec.key: instrument.value
        for instrument in registry.metrics()
        if instrument.spec.kind == "counter"
    }


class TestInstrumentedRuns:
    def test_results_identical_with_telemetry_on(self):
        baseline = ext_sched_policy.run(count=40, qps=6.0)
        with enabled() as registry:
            observed = ext_sched_policy.run(count=40, qps=6.0)
        # Instruments observe the clock, they never advance it: every
        # output row — floats included — is unchanged.
        assert observed == baseline
        assert registry.events
        # Each policy cell ran one engine; per-scope admit/finish
        # totals close over the cell's 40 requests.
        events = [r["event"] for r in registry.trace_records()]
        assert events.count("request_finished") > 0
        for instrument in registry.metrics():
            if instrument.spec.name == "num_finished_reqs_total":
                assert instrument.value == 40.0

    def test_fast_forward_counters_match_legacy(self, monkeypatch):
        def sweep():
            with enabled() as registry:
                fig08_decode_throughput.run(
                    models=[(YI_6B, 1)], batches=(16,),
                    decode_iterations=60,
                )
            return registry

        monkeypatch.setattr(engine_module, "DEFAULT_FAST_FORWARD", True)
        fast = sweep()
        monkeypatch.setattr(engine_module, "DEFAULT_FAST_FORWARD", False)
        legacy = sweep()
        # A fast-forwarded stretch books the same iteration, token and
        # busy-second totals the legacy loop would, in one record.
        fast_counters = _counters(fast)
        legacy_counters = _counters(legacy)
        assert fast_counters.keys() == legacy_counters.keys()
        for key in legacy_counters:
            assert fast_counters[key] == pytest.approx(
                legacy_counters[key]
            ), key
        stretches = fast.get("fast_forward_stretch_iterations", "r0")
        assert stretches is not None and stretches.count > 0
        # ...and the fast run takes fewer gauge samples (one per
        # stretch, not one per iteration).
        def samples(registry):
            return sum(
                len(i.samples) for i in registry.metrics()
                if isinstance(i, Gauge)
            )

        assert samples(fast) < samples(legacy)


class TestDashboard:
    def test_empty_registry(self):
        assert render_dashboard(TelemetryRegistry()) == (
            "telemetry: no metrics recorded"
        )

    def test_layer_sections_and_instrument_lines(self):
        registry = TelemetryRegistry()
        registry.counter(
            "processed_tokens_total", "r0", "engine", "tok").inc(512)
        gauge = registry.gauge("num_running_reqs", "r0", "engine", "reqs")
        for step in range(4):
            gauge.set(float(step), float(step % 2))
        registry.histogram("ttft_seconds", "r0", "engine", "s").observe(1.5)
        registry.emit(0.0, "request_admitted", scope="r0", request="a")
        text = render_dashboard(registry)
        assert "telemetry dashboard (1 events)" in text
        assert "== engine ==" in text
        assert "processed_tokens_total[r0]" in text
        assert "num_running_reqs[r0]: last=1" in text
        assert "ttft_seconds[r0]: n=1" in text

    def test_zero_counters_render_plain(self):
        registry = TelemetryRegistry()
        registry.counter("num_preempted_reqs_total", "r0", "engine")
        text = render_dashboard(registry)
        assert "num_preempted_reqs_total[r0]: 0" in text

    def test_render_json_parses(self):
        registry = TelemetryRegistry()
        registry.gauge("token_usage", "r0", "memory").set(1.0, 0.5)
        document = json.loads(render_json(registry))
        assert document["events"] == 0
        assert document["metrics"][0]["name"] == "token_usage"
