"""The python -m repro command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestList:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig02", "tab08", "ext-swap"):
            assert name in out

    def test_list_prints_dash_and_underscore_aliases(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        # Both accepted spellings of every dashed name are printed.
        for name in ("ext_cluster_router", "ext-cluster-router",
                     "ext_prefix_cache", "ext-prefix-cache"):
            assert name in out

    def test_cluster_experiment_registered(self):
        assert "ext-cluster-router" in EXPERIMENTS
        module_name, _, _ = EXPERIMENTS["ext-cluster-router"]
        assert module_name == "ext_cluster_router"

    def test_catalogue_covers_every_eval_artifact(self):
        # Every table and figure of the paper's evaluation is runnable.
        expected = {
            "fig02", "fig03", "fig04", "tab03", "fig07", "tab06",
            "fig08", "tab07", "fig09", "fig10", "fig11", "fig12",
            "fig13", "fig14", "fig15", "tab08", "tab09", "tab10",
        }
        assert expected <= set(EXPERIMENTS)


class TestRun:
    def test_run_fast_experiment(self, capsys):
        assert main(["run", "tab08"]) == 0
        out = capsys.readouterr().out
        assert "Table 8" in out
        assert "Yi-6B" in out

    def test_run_accepts_module_style_names(self, capsys):
        # `repro run ext_sharing` == `repro run ext-sharing`.
        assert main(["run", "ext_sharing"]) == 0
        assert "Prefix sharing" in capsys.readouterr().out
        assert "ext-prefix-cache" in EXPERIMENTS

    def test_run_multiple(self, capsys):
        assert main(["run", "tab08", "tab10"]) == 0
        out = capsys.readouterr().out
        assert "Table 8" in out and "Table 10" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
