"""The python -m repro command-line interface."""

import pytest

from repro.__main__ import (
    EXPERIMENTS,
    GENERATED_BEGIN,
    GENERATED_END,
    catalogue_markdown,
    main,
)


class TestList:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig02", "tab08", "ext-swap"):
            assert name in out

    def test_list_prints_dash_and_underscore_aliases(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        # Both accepted spellings of every dashed name are printed.
        for name in ("ext_cluster_router", "ext-cluster-router",
                     "ext_prefix_cache", "ext-prefix-cache",
                     "ext_sched_policy", "ext-sched-policy"):
            assert name in out

    def test_cluster_experiment_registered(self):
        assert "ext-cluster-router" in EXPERIMENTS
        assert EXPERIMENTS["ext-cluster-router"].module == "ext_cluster_router"

    def test_sched_experiment_registered(self):
        assert EXPERIMENTS["ext-sched-policy"].module == "ext_sched_policy"
        assert (
            EXPERIMENTS["ext-sched-policy"].bench
            == "benchmarks/bench_ext_sched.py"
        )

    def test_large_models_experiment_registered(self):
        # Regression: ext_large_models had a main() but no catalogue
        # entry, so `repro run` could not reach it.
        assert EXPERIMENTS["ext-large-models"].module == "ext_large_models"

    def test_catalogue_covers_every_eval_artifact(self):
        # Every table and figure of the paper's evaluation is runnable.
        expected = {
            "fig02", "fig03", "fig04", "tab03", "fig07", "tab06",
            "fig08", "tab07", "fig09", "fig10", "fig11", "fig12",
            "fig13", "fig14", "fig15", "tab08", "tab09", "tab10",
        }
        assert expected <= set(EXPERIMENTS)

    def test_every_entry_names_module_and_paper_anchor(self):
        import importlib

        for name, experiment in EXPERIMENTS.items():
            assert experiment.description
            assert experiment.paper
            # The module exists and is runnable (has a main printer).
            module = importlib.import_module(
                f"repro.experiments.{experiment.module}"
            )
            assert callable(module.main), name


class TestMarkdownCatalogue:
    def test_markdown_lists_every_experiment(self, capsys):
        assert main(["list", "--markdown"]) == 0
        out = capsys.readouterr().out
        for name, experiment in EXPERIMENTS.items():
            assert f"`{experiment.module}`" in out
            assert f"`{name}`" in out

    def test_markdown_is_a_table(self):
        lines = catalogue_markdown().splitlines()
        assert lines[0].startswith("| Experiment |")
        # Header + separator + one row per experiment, then a blank
        # line and the observability-flags footer paragraph.
        table = lines[: 2 + len(EXPERIMENTS)]
        assert all(line.startswith("|") for line in table)
        assert lines[2 + len(EXPERIMENTS)] == ""
        footer = "\n".join(lines[2 + len(EXPERIMENTS):])
        for flag in ("--telemetry", "--trace-out", "--check-trace"):
            assert flag in footer

    def test_check_passes_on_fresh_file(self, tmp_path):
        path = tmp_path / "paper_map.md"
        path.write_text(
            f"# map\n\n{GENERATED_BEGIN}\n{catalogue_markdown()}\n"
            f"{GENERATED_END}\n"
        )
        assert main(["list", "--markdown", "--check", str(path)]) == 0

    def test_check_fails_on_stale_file(self, tmp_path, capsys):
        path = tmp_path / "paper_map.md"
        path.write_text(
            f"{GENERATED_BEGIN}\n| old table |\n{GENERATED_END}\n"
        )
        assert main(["list", "--markdown", "--check", str(path)]) == 1
        assert "stale" in capsys.readouterr().err

    def test_check_fails_without_markers(self, tmp_path, capsys):
        path = tmp_path / "paper_map.md"
        path.write_text("no markers here\n")
        assert main(["list", "--markdown", "--check", str(path)]) == 1
        assert "markers" in capsys.readouterr().err

    def test_check_fails_on_missing_file(self, tmp_path):
        path = tmp_path / "absent.md"
        assert main(["list", "--markdown", "--check", str(path)]) == 1

    def test_check_requires_markdown_flag(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["list", "--check", str(tmp_path / "x.md")])

    # Freshness of the committed docs/paper_map.md is covered once, in
    # tests/test_docs.py (mirroring the CI docs job's invocation).


class TestRun:
    def test_run_fast_experiment(self, capsys):
        assert main(["run", "tab08"]) == 0
        out = capsys.readouterr().out
        assert "Table 8" in out
        assert "Yi-6B" in out

    def test_run_accepts_module_style_names(self, capsys):
        # `repro run ext_sharing` == `repro run ext-sharing`.
        assert main(["run", "ext_sharing"]) == 0
        assert "Prefix sharing" in capsys.readouterr().out
        assert "ext-prefix-cache" in EXPERIMENTS

    def test_run_multiple(self, capsys):
        assert main(["run", "tab08", "tab10"]) == 0
        out = capsys.readouterr().out
        assert "Table 8" in out and "Table 10" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_with_telemetry_flags(self, capsys, tmp_path):
        from repro.metrics.telemetry import active

        trace = tmp_path / "trace.jsonl"
        assert main([
            "run", "fig12", "--telemetry",
            "--trace-out", str(trace), "--check-trace",
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry" in out
        assert "== engine ==" in out
        assert "trace-check: all invariants hold" in out
        assert trace.exists()
        # The registry is uninstalled again afterwards.
        assert active() is None

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
