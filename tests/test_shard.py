"""Tensor-parallel sharding math, anchored to the paper's S5.1.3 example."""

import pytest

from repro.errors import ConfigError
from repro.models.shard import ShardedModel
from repro.models.zoo import LLAMA3_8B, YI_34B, YI_6B, paper_deployment
from repro.units import KB, MB


class TestPaperExample:
    """S5.1.3 works through Yi-34B with TP-2 in detail."""

    def test_yi34b_tp2_shapes(self):
        shard = ShardedModel(YI_34B, 2)
        assert shard.n_layers == 60
        assert shard.kv_heads_per_worker == 4
        assert shard.head_dim == 128
        assert shard.dtype_bytes == 2

    def test_yi34b_tp2_request_stride(self):
        # S = L*H*D*P = 200K * 4 * 128 * 2 ~= 200MB (paper uses decimal).
        shard = ShardedModel(YI_34B, 2)
        s = shard.max_request_cache_bytes_per_layer()
        assert s == 200_000 * 4 * 128 * 2
        assert s == pytest.approx(200e6, rel=0.03)

    def test_yi34b_tp2_buffer_size_b500(self):
        # BS = B*S ~= 100GB for B=500; 120 buffers ~= 12TB total.
        shard = ShardedModel(YI_34B, 2)
        buffer = shard.buffer_size(500)
        assert buffer == pytest.approx(100e9, rel=0.03)
        assert shard.total_virtual_bytes(500) == 120 * buffer


class TestShardingInvariants:
    def test_tp1_equals_model(self):
        shard = ShardedModel(YI_6B, 1)
        assert shard.kv_bytes_per_token == YI_6B.kv_bytes_per_token

    def test_tp2_halves_kv(self):
        shard = ShardedModel(LLAMA3_8B, 2)
        assert shard.kv_bytes_per_token == LLAMA3_8B.kv_bytes_per_token // 2

    def test_tp_halves_flops(self):
        full = ShardedModel(LLAMA3_8B, 1)
        half = ShardedModel(LLAMA3_8B, 2)
        assert half.linear_flops_per_token() == pytest.approx(
            full.linear_flops_per_token() / 2
        )
        assert half.attention_flops_prefill(4096) == pytest.approx(
            full.attention_flops_prefill(4096) / 2
        )

    def test_weight_bytes_split(self):
        full = ShardedModel(YI_34B, 1)
        half = ShardedModel(YI_34B, 2)
        # Projections split; embeddings replicate, so strictly more than half.
        assert half.weight_bytes_per_worker > full.weight_bytes_per_worker // 2
        assert half.weight_bytes_per_worker < full.weight_bytes_per_worker

    def test_indivisible_tp_rejected(self):
        with pytest.raises(ConfigError):
            ShardedModel(YI_6B, 8)  # 4 KV heads cannot split 8 ways

    def test_nonpositive_tp_rejected(self):
        with pytest.raises(ConfigError):
            ShardedModel(YI_6B, 0)

    def test_buffer_size_rejects_bad_batch(self):
        with pytest.raises(ConfigError):
            ShardedModel(YI_6B, 1).buffer_size(0)


class TestBlockSizeMath:
    """Table 8: tokens per page-group doubles with TP degree."""

    def test_yi6b_tp1_2mb(self):
        assert ShardedModel(YI_6B, 1).tokens_per_page_group(2 * MB) == 2048

    def test_yi6b_tp2_2mb(self):
        assert ShardedModel(YI_6B, 2).tokens_per_page_group(2 * MB) == 4096

    def test_llama_tp1_64kb(self):
        assert ShardedModel(LLAMA3_8B, 1).tokens_per_page_group(64 * KB) == 32

    def test_yi34b_tp2_64kb(self):
        assert ShardedModel(YI_34B, 2).tokens_per_page_group(64 * KB) == 64


class TestPaperDeployment:
    def test_deployments_match_table5(self):
        assert paper_deployment(YI_6B).tp_degree == 1
        assert paper_deployment(LLAMA3_8B).tp_degree == 2
        assert paper_deployment(YI_34B).tp_degree == 2

    def test_by_name(self):
        assert paper_deployment("Yi-6B").model is YI_6B

    def test_unknown_model_rejected(self):
        from repro.models.zoo import GPT3_175B

        with pytest.raises(ConfigError):
            paper_deployment(GPT3_175B)
