"""Prefix-sharing (page aliasing) extension: S8.1's de-duplication."""

import pytest

from repro.core.config import VAttentionConfig
from repro.core.sharing import tokens_shareable
from repro.core.vattention import VAttention
from repro.errors import SchedulingError
from repro.gpu.device import Device
from repro.gpu.spec import A100
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.units import GB, MB


def make_manager(batch=4, **flags):
    device = Device(A100, reserved_bytes=40 * GB)
    config = VAttentionConfig(
        shard=ShardedModel(YI_6B, 1),
        max_batch_size=batch,
        page_group_size=2 * MB,  # 2048 tokens per page-group
        eager_allocation=False,
        overlap_allocation=False,
        **flags,
    )
    return device, VAttention(device, config)


def step_for(manager, assignments):
    seq = [0] * manager.config.max_batch_size
    for req, ctx in assignments.items():
        seq[req] = ctx
    return manager.step(seq)


class TestShareMechanics:
    def test_full_rows_aliased_partial_copied(self):
        _, manager = make_manager()
        src = manager.alloc_reqid()
        step_for(manager, {src: 5_000})
        dst = manager.alloc_reqid()
        result = manager.share_prefix(src, dst, 5_000)
        assert result.shared_rows == 2  # 4096 of 5000 tokens aliased
        assert result.copied_tokens == 5_000 - 4_096
        assert not result.fully_aliased
        assert manager.slots[dst].mapped_rows == 3  # 2 aliased + 1 copy

    def test_boundary_prefix_fully_aliased(self):
        _, manager = make_manager()
        src = manager.alloc_reqid()
        step_for(manager, {src: 4_096})
        dst = manager.alloc_reqid()
        result = manager.share_prefix(src, dst, 4_096)
        assert result.fully_aliased
        assert result.copied_tokens == 0

    def test_no_new_physical_memory_for_aliases(self):
        _, manager = make_manager()
        src = manager.alloc_reqid()
        step_for(manager, {src: 4_096})
        physical_before = manager.physical_rows_in_use
        dst = manager.alloc_reqid()
        manager.share_prefix(src, dst, 4_096)
        assert manager.physical_rows_in_use == physical_before
        assert manager.dedup_saved_bytes == 2 * manager.config.row_bytes

    def test_dst_suffix_allocates_normally(self):
        _, manager = make_manager()
        src = manager.alloc_reqid()
        step_for(manager, {src: 4_096})
        dst = manager.alloc_reqid()
        manager.share_prefix(src, dst, 4_096)
        step_for(manager, {src: 4_096, dst: 6_000})
        assert manager.slots[dst].mapped_rows == 3  # 2 shared + 1 own

    def test_share_charges_mapping_latency(self):
        device, manager = make_manager()
        src = manager.alloc_reqid()
        step_for(manager, {src: 4_096})
        dst = manager.alloc_reqid()
        before = device.clock.now
        result = manager.share_prefix(src, dst, 4_096)
        assert device.clock.now - before == pytest.approx(
            result.latency_seconds
        )
        assert result.latency_seconds > 0  # aliasing is VMM calls, not free


class TestShareValidation:
    def test_prefix_must_be_resident(self):
        _, manager = make_manager()
        src = manager.alloc_reqid()
        step_for(manager, {src: 1_000})
        dst = manager.alloc_reqid()
        with pytest.raises(SchedulingError):
            manager.share_prefix(src, dst, 2_000)

    def test_dst_must_be_fresh(self):
        _, manager = make_manager()
        src = manager.alloc_reqid()
        step_for(manager, {src: 4_096})
        dst = manager.alloc_reqid()
        step_for(manager, {src: 4_096, dst: 100})
        with pytest.raises(SchedulingError):
            manager.share_prefix(src, dst, 4_096)

    def test_self_share_rejected(self):
        _, manager = make_manager()
        src = manager.alloc_reqid()
        step_for(manager, {src: 4_096})
        with pytest.raises(SchedulingError):
            manager.share_prefix(src, src, 4_096)

    def test_inactive_parties_rejected(self):
        _, manager = make_manager()
        src = manager.alloc_reqid()
        step_for(manager, {src: 4_096})
        with pytest.raises(SchedulingError):
            manager.share_prefix(src, 3, 4_096)


class TestSharedLifetime:
    def test_src_free_keeps_dst_usable(self):
        _, manager = make_manager()
        src = manager.alloc_reqid()
        step_for(manager, {src: 4_096})
        dst = manager.alloc_reqid()
        manager.share_prefix(src, dst, 4_096)
        manager.free_reqid(src)
        # dst still holds its 2 aliased rows; physical rows stay live.
        assert manager.slots[dst].mapped_rows == 2
        assert manager.physical_rows_in_use == 2

    def test_last_user_frees_physical_rows(self):
        _, manager = make_manager()
        src = manager.alloc_reqid()
        step_for(manager, {src: 4_096})
        dst = manager.alloc_reqid()
        manager.share_prefix(src, dst, 4_096)
        manager.free_reqid(src)
        manager.free_reqid(dst)
        assert manager.physical_rows_in_use == 0
        assert manager.dedup_saved_bytes == 0

    def test_shared_rows_never_cached_for_reuse(self):
        # A successor inheriting aliased rows would overwrite the other
        # request's KV; the manager must release them on free instead.
        _, manager = make_manager()
        src = manager.alloc_reqid()
        step_for(manager, {src: 4_096})
        dst = manager.alloc_reqid()
        manager.share_prefix(src, dst, 4_096)
        manager.free_reqid(dst)
        assert manager.slots[dst].mapped_rows == 0

    def test_reclaim_of_aliased_rows_does_not_corrupt(self):
        # Drive the pool to reclaim; detaching an alias must not hand
        # the still-referenced handle to another request.
        device, manager = make_manager(batch=3)
        src = manager.alloc_reqid()
        step_for(manager, {src: 4_096})
        dst = manager.alloc_reqid()
        manager.share_prefix(src, dst, 4_096)
        manager.free_reqid(src)  # src's aliased rows detach, refs drop to 1
        third = manager.alloc_reqid()
        step_for(manager, {dst: 4_096, third: 8_192})
        # dst's prefix rows are still exactly its 2 aliased rows.
        assert manager.slots[dst].mapped_rows == 2
        manager.shutdown()
        assert device.pool.committed == 0

    def test_shutdown_with_shares_releases_everything(self):
        device, manager = make_manager()
        src = manager.alloc_reqid()
        step_for(manager, {src: 4_096})
        dst = manager.alloc_reqid()
        manager.share_prefix(src, dst, 4_096)
        manager.shutdown()
        assert device.pool.committed == 0


class TestHelpers:
    def test_tokens_shareable(self):
        assert tokens_shareable(5_000, 2_048) == 4_096
        assert tokens_shareable(2_048, 2_048) == 2_048
        assert tokens_shareable(100, 2_048) == 0

    def test_tokens_shareable_rejects_negative(self):
        with pytest.raises(ValueError):
            tokens_shareable(-1, 2_048)
