"""Hierarchical GPU→CPU KV tiering: wins, gauges, trace invariant.

Three layers:

* The acceptance criterion — under memory pressure, ``tiered``
  eviction must beat recompute-on-preempt on p99 TTFT (waiting
  requests start sooner when a restore is a PCIe transfer instead of a
  quadratic prefill), at every context length the experiment sweeps.
* Per-tier telemetry — the facade's merged sample carries the
  ``kv_tier_usage`` / queue-depth gauges, and pressured runs emit
  paired ``tier_transfer`` events that replay cleanly.
* The ``tier-conservation`` trace invariant — synthetic traces that
  break the out/in pairing in each possible way must be flagged.
"""

import pytest

from repro.experiments import ext_kv_tiering
from repro.gpu.spec import A100
from repro.metrics.telemetry import TelemetryRegistry, enabled
from repro.metrics.tracecheck import check_trace
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.serving.engine import EngineConfig, LLMEngine
from repro.workloads.traces import fixed_trace


# ----------------------------------------------------------------------
# The acceptance criterion
# ----------------------------------------------------------------------
class TestTieredBeatsRecompute:
    @pytest.fixture(scope="class")
    def rows(self):
        return ext_kv_tiering.run()

    def test_p99_ttft_wins_at_every_context(self, rows):
        for row in rows:
            assert row.tiered_p99_ttft < row.recompute_p99_ttft

    def test_advantage_grows_with_context(self, rows):
        speedups = [row.ttft_speedup for row in rows]
        assert speedups == sorted(speedups)

    def test_tiering_actually_engaged(self, rows):
        for row in rows:
            assert row.tier_transfers > 0
            assert row.tiered_prefills < row.recompute_prefills


# ----------------------------------------------------------------------
# Telemetry: gauges and events
# ----------------------------------------------------------------------
def _pressured_run(mode: str = "tiered"):
    shard = ShardedModel(YI_6B, 1)
    prompt_len = 8_192
    budget = int(3 * prompt_len * shard.kv_bytes_per_token * 1.02)
    engine = LLMEngine(
        EngineConfig(
            shard=shard,
            gpu=A100,
            memory_backend="vattention",
            max_batch_size=4,
            kv_budget_bytes=budget,
            preemption_mode=mode,
            eager_allocation=False,
        )
    )
    engine.submit(
        fixed_trace(count=3, prompt_len=prompt_len, max_new_tokens=400)
    )
    engine.run()


class TestTierTelemetry:
    def test_tier_gauges_sampled(self):
        with enabled(TelemetryRegistry()) as registry:
            _pressured_run("tiered")
        metrics = {
            record["metric"]
            for record in registry.trace_records()
            if record["event"] == "sample"
        }
        assert "kv_tier_usage" in metrics
        assert "tier_transfer_queue_depth" in metrics
        # The cumulative _total keys become counters, not samples.
        counters = {
            entry["name"]: entry["value"]
            for entry in registry.snapshot()
            if entry["kind"] == "counter"
        }
        assert counters["tier_bytes_out_total"] > 0
        assert counters["tier_bytes_in_total"] > 0

    def test_tier_usage_rises_under_pressure(self):
        with enabled(TelemetryRegistry()) as registry:
            _pressured_run("tiered")
        usage = [
            record["value"]
            for record in registry.trace_records()
            if record["event"] == "sample"
            and record["metric"] == "kv_tier_usage"
        ]
        assert max(usage) > 0.0

    def test_transfer_events_paired_and_clean(self):
        with enabled(TelemetryRegistry(record_spans=True)) as registry:
            _pressured_run("tiered")
        records = registry.trace_records()
        transfers = [r for r in records if r["event"] == "tier_transfer"]
        assert transfers, "pressure must produce tier transfers"
        outs = [t for t in transfers if t["direction"] == "out"]
        ins = [t for t in transfers if t["direction"] == "in"]
        assert len(outs) == len(ins)
        assert all(t["nbytes"] > 0 for t in transfers)
        assert all(t["seconds"] > 0 for t in transfers)
        assert all(t["mode"] == "tiered" for t in transfers)
        assert check_trace(records) == []

    def test_recompute_run_emits_no_transfers(self):
        with enabled(TelemetryRegistry()) as registry:
            _pressured_run("recompute")
        assert not any(
            record["event"] == "tier_transfer"
            for record in registry.trace_records()
        )


# ----------------------------------------------------------------------
# The tier-conservation invariant
# ----------------------------------------------------------------------
def _transfer(seq, direction, request="a", nbytes=1_000, time=1.0,
              scope="r0"):
    return {
        "seq": seq, "time": time, "event": "tier_transfer",
        "scope": scope, "request": request, "direction": direction,
        "nbytes": nbytes, "seconds": 0.01, "mode": "tiered",
    }


def _invariants(records):
    return {violation.invariant for violation in check_trace(records)}


class TestTierConservation:
    def test_clean_round_trip(self):
        assert check_trace([
            _transfer(0, "out"),
            _transfer(1, "in", time=2.0),
        ]) == []

    def test_double_swap_out_flagged(self):
        assert _invariants([
            _transfer(0, "out"),
            _transfer(1, "out", time=2.0),
        ]) == {"tier-conservation"}

    def test_restore_without_swap_out_flagged(self):
        assert _invariants([_transfer(0, "in")]) == {"tier-conservation"}

    def test_byte_mismatch_flagged(self):
        assert _invariants([
            _transfer(0, "out", nbytes=1_000),
            _transfer(1, "in", nbytes=999, time=2.0),
        ]) == {"tier-conservation"}

    def test_stranded_kv_flagged(self):
        assert _invariants([_transfer(0, "out")]) == {"tier-conservation"}

    def test_unknown_direction_flagged(self):
        assert _invariants(
            [_transfer(0, "sideways")]
        ) == {"tier-conservation"}

    def test_requests_tracked_independently(self):
        assert check_trace([
            _transfer(0, "out", request="a"),
            _transfer(1, "out", request="b", time=2.0),
            _transfer(2, "in", request="a", time=3.0),
            _transfer(3, "in", request="b", time=4.0),
        ]) == []

    def test_scopes_partition_requests(self):
        # The same request id on another replica is a different ledger.
        assert _invariants([
            _transfer(0, "out", scope="r0"),
            _transfer(1, "in", scope="r1"),
        ]) == {"tier-conservation"}

    def test_repeated_round_trips_clean(self):
        assert check_trace([
            _transfer(0, "out"),
            _transfer(1, "in", time=2.0),
            _transfer(2, "out", time=3.0),
            _transfer(3, "in", time=4.0),
        ]) == []
