"""Workload traces: distribution bounds, determinism, arrival processes."""

import pytest

from repro.errors import ConfigError
from repro.workloads.arrival import (
    batch_arrivals,
    bursty_arrivals,
    mmpp_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.workloads.traces import (
    ARXIV_OFFLINE_COUNT,
    ARXIV_ONLINE_COUNT,
    TraceSpec,
    arxiv_offline_trace,
    arxiv_online_trace,
    fixed_trace,
    openchat_trace,
    trace_statistics,
)


class TestArrivals:
    def test_poisson_is_sorted_and_positive(self):
        arrivals = poisson_arrivals(qps=2.0, count=100, seed=1)
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0

    def test_poisson_mean_rate(self):
        arrivals = poisson_arrivals(qps=5.0, count=5000, seed=2)
        observed_qps = len(arrivals) / arrivals[-1]
        assert observed_qps == pytest.approx(5.0, rel=0.1)

    def test_poisson_deterministic_by_seed(self):
        assert poisson_arrivals(1.0, 10, seed=3) == poisson_arrivals(1.0, 10, seed=3)
        assert poisson_arrivals(1.0, 10, seed=3) != poisson_arrivals(1.0, 10, seed=4)

    def test_uniform_gap(self):
        arrivals = uniform_arrivals(qps=4.0, count=4)
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(g == pytest.approx(0.25) for g in gaps)

    def test_batch_all_at_start(self):
        assert batch_arrivals(3, start=7.0) == [7.0, 7.0, 7.0]

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            poisson_arrivals(0, 10, seed=1)
        with pytest.raises(ConfigError):
            uniform_arrivals(1.0, 0)
        with pytest.raises(ConfigError):
            batch_arrivals(0)


class TestBurstyArrivals:
    def test_sorted_positive_and_deterministic(self):
        arrivals = bursty_arrivals(qps=2.0, count=200, seed=11)
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0
        assert arrivals == bursty_arrivals(qps=2.0, count=200, seed=11)
        assert arrivals != bursty_arrivals(qps=2.0, count=200, seed=12)

    def test_long_run_rate_approaches_qps(self):
        arrivals = bursty_arrivals(qps=4.0, count=30_000, seed=5)
        observed = len(arrivals) / arrivals[-1]
        # The MMPP's heavy-tailed off dwells make convergence slower
        # than homogeneous Poisson, hence the looser tolerance.
        assert observed == pytest.approx(4.0, rel=0.15)

    def test_burstier_than_poisson(self):
        import statistics

        arrivals = bursty_arrivals(qps=2.0, count=10_000, seed=3)
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        cv = statistics.pstdev(gaps) / statistics.fmean(gaps)
        # A Poisson process has CV = 1; on/off modulation must push the
        # inter-arrival dispersion far above it.
        assert cv > 2.0
        # Off dwells appear as gaps far beyond the on-state mean gap.
        on_gap = 1.0 / (4.0 * 2.0)
        assert max(gaps) > 20 * on_gap

    def test_bursts_are_locally_fast(self):
        arrivals = bursty_arrivals(
            qps=2.0, count=5_000, seed=9, burst_factor=8.0
        )
        gaps = sorted(b - a for a, b in zip(arrivals, arrivals[1:]))
        # Inside a burst the median gap tracks the ON rate (8x qps),
        # not the long-run rate.
        median_gap = gaps[len(gaps) // 2]
        assert median_gap < 1.0 / (2.0 * 2.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            bursty_arrivals(qps=0, count=10, seed=1)
        with pytest.raises(ConfigError):
            bursty_arrivals(qps=1.0, count=0, seed=1)
        with pytest.raises(ConfigError):
            bursty_arrivals(qps=1.0, count=10, seed=1, burst_factor=1.0)
        with pytest.raises(ConfigError):
            bursty_arrivals(qps=1.0, count=10, seed=1, mean_on=0.0)


class TestMmppArrivals:
    def test_sorted_positive_and_deterministic(self):
        arrivals = mmpp_arrivals(
            rates=(2.0, 8.0), dwells=(20.0, 20.0), count=500, seed=17
        )
        assert len(arrivals) == 500
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0
        assert arrivals == mmpp_arrivals(
            rates=(2.0, 8.0), dwells=(20.0, 20.0), count=500, seed=17
        )
        assert arrivals != mmpp_arrivals(
            rates=(2.0, 8.0), dwells=(20.0, 20.0), count=500, seed=18
        )

    def test_long_run_rate_matches_dwell_weighted_average(self):
        rates = (1.0, 4.0, 8.0, 2.0)
        dwells = (50.0, 50.0, 50.0, 50.0)
        arrivals = mmpp_arrivals(
            rates=rates, dwells=dwells, count=40_000, seed=5
        )
        expected = sum(r * d for r, d in zip(rates, dwells)) / sum(dwells)
        observed = len(arrivals) / arrivals[-1]
        assert observed == pytest.approx(expected, rel=0.15)

    def test_diurnal_modulation_shows_in_local_rate(self):
        # Night (low) and peak (high) phases must be visible as
        # different local arrival densities, not averaged away.
        arrivals = mmpp_arrivals(
            rates=(1.0, 10.0), dwells=(100.0, 100.0), count=20_000, seed=7
        )
        gaps = sorted(b - a for a, b in zip(arrivals, arrivals[1:]))
        median_gap = gaps[len(gaps) // 2]
        # Most arrivals come from the 10x phase, so the median gap
        # tracks the peak rate, while the night phase contributes
        # gaps an order of magnitude wider.
        assert median_gap < 1.0 / 5.0
        assert gaps[-1] > 10 * median_gap

    def test_silent_state_pauses_the_stream(self):
        arrivals = mmpp_arrivals(
            rates=(5.0, 0.0), dwells=(10.0, 40.0), count=2_000, seed=3
        )
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        # The zero-rate dwell (mean 40s) must show up as long gaps.
        assert max(gaps) > 20.0

    def test_bursty_arrivals_is_the_two_state_special_case(self):
        # Same structure: an emitting state and a silent state.
        arrivals = mmpp_arrivals(
            rates=(8.0, 0.0), dwells=(10.0, 30.0), count=5_000, seed=9
        )
        observed = len(arrivals) / arrivals[-1]
        # Long-run rate = 8 * 10 / (10 + 30) = 2 qps.
        assert observed == pytest.approx(2.0, rel=0.2)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            mmpp_arrivals(rates=(), dwells=(), count=10, seed=1)
        with pytest.raises(ConfigError):
            mmpp_arrivals(rates=(1.0,), dwells=(1.0, 2.0), count=10, seed=1)
        with pytest.raises(ConfigError):
            mmpp_arrivals(rates=(0.0, 0.0), dwells=(1.0, 1.0), count=10, seed=1)
        with pytest.raises(ConfigError):
            mmpp_arrivals(rates=(-1.0, 2.0), dwells=(1.0, 1.0), count=10, seed=1)
        with pytest.raises(ConfigError):
            mmpp_arrivals(rates=(1.0, 2.0), dwells=(0.0, 1.0), count=10, seed=1)
        with pytest.raises(ConfigError):
            mmpp_arrivals(rates=(1.0,), dwells=(1.0,), count=0, seed=1)


class TestTraceSpec:
    def test_sample_respects_bounds(self):
        import random

        spec = TraceSpec(low=100, high=1000, mean=300)
        rng = random.Random(0)
        samples = [spec.sample(rng) for _ in range(1000)]
        assert all(100 <= s <= 1000 for s in samples)

    def test_mean_roughly_holds(self):
        import random

        spec = TraceSpec(low=1, high=100_000, mean=500)
        rng = random.Random(0)
        samples = [spec.sample(rng) for _ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(500, rel=0.25)

    def test_mean_outside_bounds_rejected(self):
        with pytest.raises(ConfigError):
            TraceSpec(low=100, high=200, mean=50)


class TestArxivOffline:
    """S7.3: 427 requests, context 64K-192K, decode 17-5153, P:D ~ 356."""

    def test_paper_scale(self):
        trace = arxiv_offline_trace()
        stats = trace_statistics(trace)
        assert stats["count"] == ARXIV_OFFLINE_COUNT == 427
        assert stats["prompt_min"] >= 60_000
        assert stats["prompt_max"] <= 192_000
        assert stats["decode_min"] >= 17
        assert stats["decode_max"] <= 5_153

    def test_prefill_dominated(self):
        stats = trace_statistics(arxiv_offline_trace())
        assert stats["pd_ratio"] > 100  # strongly prefill-bound

    def test_deterministic(self):
        a = arxiv_offline_trace(seed=7)
        b = arxiv_offline_trace(seed=7)
        assert [(r.prompt_len, r.max_new_tokens) for r in a] == [
            (r.prompt_len, r.max_new_tokens) for r in b
        ]

    def test_total_length_respects_model_context(self):
        trace = arxiv_offline_trace(max_context=200_000)
        assert all(r.total_len <= 200_000 for r in trace)


class TestArxivOnline:
    """S7.4: input 22K-45K (mean 29K), decode 6-3250 (mean 348)."""

    def test_paper_statistics(self):
        arrivals = poisson_arrivals(0.25, ARXIV_ONLINE_COUNT, seed=1)
        stats = trace_statistics(arxiv_online_trace(arrivals))
        assert stats["count"] == 512
        assert 22_000 <= stats["prompt_min"]
        assert stats["prompt_max"] <= 45_000
        assert stats["prompt_mean"] == pytest.approx(29_000, rel=0.15)
        assert stats["decode_mean"] == pytest.approx(348, rel=0.35)

    def test_arrivals_attached(self):
        arrivals = poisson_arrivals(0.25, 10, seed=1)
        trace = arxiv_online_trace(arrivals)
        assert [r.arrival_time for r in trace] == arrivals


class TestOpenChat:
    def test_chat_scale_lengths(self):
        arrivals = batch_arrivals(200)
        stats = trace_statistics(openchat_trace(arrivals))
        assert stats["prompt_max"] <= 8_192
        assert stats["prompt_mean"] < 2_000  # chat prompts are short

    def test_arrival_count_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            openchat_trace([1.0, 2.0], seed=1)[0]
            arxiv_online_trace([])


class TestFixedTrace:
    def test_homogeneous(self):
        trace = fixed_trace(count=4, prompt_len=100, max_new_tokens=10)
        assert len(trace) == 4
        assert all(r.prompt_len == 100 for r in trace)
        assert len({r.request_id for r in trace}) == 4

    def test_stats_reject_empty(self):
        with pytest.raises(ConfigError):
            trace_statistics([])
