"""vAttention configuration layout math."""

import pytest

from repro.core.config import VAttentionConfig
from repro.errors import ConfigError
from repro.models.shard import ShardedModel
from repro.models.zoo import LLAMA3_8B, YI_34B, YI_6B
from repro.units import KB, MB


def config_for(model, tp, **kwargs):
    defaults = dict(max_batch_size=8, page_group_size=2 * MB)
    defaults.update(kwargs)
    return VAttentionConfig(shard=ShardedModel(model, tp), **defaults)


class TestTensorCounts:
    def test_2n_tensors(self):
        assert config_for(YI_6B, 1).n_tensors == 64
        assert config_for(YI_34B, 2).n_tensors == 120

    def test_slicing_uses_two_tensors(self):
        assert config_for(YI_6B, 1, tensor_slicing=True).n_tensors == 2


class TestBlockSizes:
    """Table 8 / Table 10 anchors via the config math."""

    def test_table8_yi6b(self):
        assert config_for(YI_6B, 1).tokens_per_page_group == 2048
        assert config_for(YI_6B, 1, page_group_size=64 * KB).tokens_per_page_group == 64
        assert config_for(YI_6B, 2).tokens_per_page_group == 4096

    def test_table8_llama(self):
        assert config_for(LLAMA3_8B, 1).tokens_per_page_group == 1024
        assert config_for(LLAMA3_8B, 2, page_group_size=128 * KB).tokens_per_page_group == 128

    def test_table10_slicing(self):
        assert config_for(YI_6B, 1, tensor_slicing=True).tokens_per_page_group == 64
        assert config_for(LLAMA3_8B, 2, tensor_slicing=True).tokens_per_page_group == 64


class TestStrides:
    def test_request_stride_is_aligned(self):
        config = config_for(YI_34B, 2)
        assert config.request_stride % config.page_group_size == 0
        # S ~= 200MB for Yi-34B TP-2 (S5.1.3).
        assert config.request_stride == pytest.approx(200e6, rel=0.03)

    def test_buffer_and_total_virtual(self):
        config = config_for(YI_34B, 2, max_batch_size=500)
        assert config.buffer_bytes == 500 * config.request_stride
        assert config.total_virtual_bytes == 120 * config.buffer_bytes
        # ~12TB of virtual memory (S5.1.3), well inside 128TB of VA.
        assert config.total_virtual_bytes == pytest.approx(12e12, rel=0.05)

    def test_rows_for_context(self):
        config = config_for(YI_6B, 1)  # 2048 tokens per page-group
        assert config.rows_for_context(0) == 0
        assert config.rows_for_context(1) == 1
        assert config.rows_for_context(2048) == 1
        assert config.rows_for_context(2049) == 2

    def test_rows_rejects_negative(self):
        with pytest.raises(ConfigError):
            config_for(YI_6B, 1).rows_for_context(-1)

    def test_row_bytes(self):
        config = config_for(YI_6B, 1)
        assert config.row_bytes == 64 * 2 * MB
        assert config.kv_bytes_mapped(3) == 3 * config.row_bytes


class TestValidation:
    def test_rejects_bad_batch(self):
        with pytest.raises(ConfigError):
            config_for(YI_6B, 1, max_batch_size=0)

    def test_rejects_bad_page_size(self):
        with pytest.raises(ConfigError):
            config_for(YI_6B, 1, page_group_size=4 * KB)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigError):
            config_for(YI_6B, 1, reclamation_threshold=1.5)

    def test_rejects_negative_eager(self):
        with pytest.raises(ConfigError):
            config_for(YI_6B, 1, eager_page_groups=-1)
