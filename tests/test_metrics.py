"""Statistics helpers and the metrics collector."""

import json
import random

import pytest

from repro.errors import ConfigError
from repro.metrics.collector import (
    IterationRecord,
    MetricsCollector,
    RunReport,
    none_on_empty,
)
from repro.metrics.rolling import RollingPercentileTracker
from repro.metrics.stats import (
    cdf_at,
    cdf_points,
    geomean,
    mean,
    median,
    percentile,
    ratio,
)
from repro.serving.request import Request, RequestState


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_percentile_interpolates(self):
        values = [0.0, 10.0]
        assert percentile(values, 50) == 5.0
        assert percentile(values, 0) == 0.0
        assert percentile(values, 100) == 10.0

    def test_percentile_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_cdf_points_monotone(self):
        points = cdf_points([3.0, 1.0, 2.0])
        values = [v for v, _ in points]
        fractions = [f for _, f in points]
        assert values == sorted(values)
        assert fractions[-1] == 1.0
        assert all(b >= a for a, b in zip(fractions, fractions[1:]))

    def test_cdf_at(self):
        assert cdf_at([1.0, 2.0, 3.0, 4.0], 2.5) == 0.5

    def test_ratio_guard(self):
        assert ratio(4.0, 2.0) == 2.0
        with pytest.raises(ValueError):
            ratio(1.0, 0.0)


class TestPercentileEdgeCases:
    def test_single_element_every_q(self):
        for q in (0.0, 37.5, 50.0, 99.0, 100.0):
            assert percentile([42.0], q) == 42.0

    def test_q_zero_and_hundred_are_extremes(self):
        values = [9.0, -3.0, 4.0, 17.0]
        assert percentile(values, 0.0) == -3.0
        assert percentile(values, 100.0) == 17.0

    def test_unsorted_input_sorted_internally(self):
        shuffled = [30.0, 10.0, 20.0]
        assert percentile(shuffled, 50.0) == 20.0
        # The input list must not be reordered in place.
        assert shuffled == [30.0, 10.0, 20.0]

    def test_exact_rank_needs_no_interpolation(self):
        # Five elements: q=25 lands exactly on index 1.
        assert percentile([5.0, 1.0, 2.0, 3.0, 4.0], 25.0) == 2.0

    def test_interpolates_between_ranks(self):
        assert percentile([0.0, 10.0], 75.0) == pytest.approx(7.5)

    def test_empty_and_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.1)


def record(phase: str, latency: float, batch: int = 4, tokens: int = 4,
           alloc: float = 0.0, start: float = 0.0) -> IterationRecord:
    return IterationRecord(
        start_time=start, phase=phase, batch_size=batch,
        latency=latency, alloc_sync=alloc, tokens=tokens,
    )


class TestCollector:
    def test_phase_filter(self):
        collector = MetricsCollector()
        collector.record(record("prefill", 1.0))
        collector.record(record("decode", 0.01))
        assert len(collector.of_phase("decode")) == 1

    def test_decode_throughput(self):
        collector = MetricsCollector()
        collector.record(record("decode", 0.01, tokens=4))
        collector.record(record("decode", 0.01, tokens=4))
        assert collector.decode_throughput() == pytest.approx(400.0)

    def test_prefill_throughput(self):
        collector = MetricsCollector()
        collector.record(record("prefill", 2.0, tokens=16_384))
        assert collector.prefill_throughput() == pytest.approx(8192.0)

    def test_empty_throughput_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector().decode_throughput()

    def test_spike_count(self):
        collector = MetricsCollector()
        collector.record(record("decode", 0.01, alloc=0.005))
        collector.record(record("decode", 0.01, alloc=0.0))
        assert collector.alloc_spike_iterations(threshold=0.001) == 1


class TestRunReport:
    def _finished_request(self, rid: str, arrival: float, finish: float) -> Request:
        request = Request(request_id=rid, prompt_len=10, max_new_tokens=1,
                          arrival_time=arrival)
        request.state = RequestState.RUNNING
        request.record_prefill(now=finish)
        request.finish(now=finish)
        return request

    def test_requests_per_minute(self):
        requests = [
            self._finished_request("a", 0.0, 30.0),
            self._finished_request("b", 0.0, 60.0),
        ]
        report = RunReport(
            requests=requests, metrics=MetricsCollector(),
            start_time=0.0, end_time=60.0,
        )
        assert report.requests_per_minute() == pytest.approx(2.0)

    def test_latency_percentiles(self):
        requests = [
            self._finished_request("a", 0.0, 10.0),
            self._finished_request("b", 0.0, 20.0),
        ]
        report = RunReport(
            requests=requests, metrics=MetricsCollector(),
            start_time=0.0, end_time=20.0,
        )
        assert report.median_latency() == pytest.approx(15.0)
        assert report.p99_latency() <= 20.0

    def test_unfinished_requests_excluded(self):
        unfinished = Request(request_id="x", prompt_len=10, max_new_tokens=5)
        report = RunReport(
            requests=[unfinished, self._finished_request("a", 0.0, 5.0)],
            metrics=MetricsCollector(), start_time=0.0, end_time=10.0,
        )
        assert len(report.finished_requests) == 1

    def test_ttft_percentiles(self):
        requests = [
            self._finished_request("a", 0.0, 4.0),
            self._finished_request("b", 2.0, 10.0),
        ]
        report = RunReport(
            requests=requests, metrics=MetricsCollector(),
            start_time=0.0, end_time=10.0,
        )
        # record_prefill stamps first_token_time at the finish instant.
        assert report.ttft_latencies() == [4.0, 8.0]
        assert report.mean_ttft() == pytest.approx(6.0)
        assert report.median_ttft() == pytest.approx(6.0)
        assert report.p99_ttft() == pytest.approx(8.0, rel=0.01)

    def test_ttft_skips_requests_without_first_token(self):
        # A migrated decode continuation finishes on this replica but
        # produced its first token elsewhere: no TTFT sample here.
        continuation = Request(
            request_id="m#decode", prompt_len=11, max_new_tokens=2,
            prefill_done=True, prefilled_tokens=11,
        )
        continuation.state = RequestState.RUNNING
        continuation.record_decode_token(now=1.0)
        continuation.record_decode_token(now=2.0)
        continuation.finish(now=2.0)
        report = RunReport(
            requests=[continuation, self._finished_request("a", 0.0, 5.0)],
            metrics=MetricsCollector(), start_time=0.0, end_time=5.0,
        )
        assert len(report.finished_requests) == 2
        assert report.ttft_latencies() == [5.0]


class TestRunReportEmptyRuns:
    def _report(self, requests, end=0.0):
        return RunReport(
            requests=requests, metrics=MetricsCollector(),
            start_time=0.0, end_time=end,
        )

    def test_empty_run_accessors(self):
        report = self._report([])
        assert report.finished_requests == []
        assert report.e2e_latencies() == []
        assert report.ttft_latencies() == []
        assert report.makespan == 0.0
        with pytest.raises(ValueError):
            report.requests_per_minute()
        with pytest.raises(ValueError):
            report.median_latency()
        with pytest.raises(ValueError):
            report.p99_latency()
        with pytest.raises(ValueError):
            report.mean_ttft()
        with pytest.raises(ValueError):
            report.median_ttft()
        with pytest.raises(ValueError):
            report.p99_ttft()

    def test_zero_finished_run(self):
        # Requests arrived but none completed (an aborted run).
        stuck = Request(request_id="s", prompt_len=8, max_new_tokens=4)
        report = self._report([stuck], end=3.0)
        assert report.finished_requests == []
        assert report.requests_per_minute() == 0.0
        with pytest.raises(ValueError):
            report.median_latency()
        with pytest.raises(ValueError):
            report.median_ttft()


class TestRollingWindow:
    def test_empty_window_returns_none(self):
        tracker = RollingPercentileTracker(window_seconds=10.0)
        assert len(tracker) == 0
        assert tracker.values() == []
        assert tracker.percentile(99.0) is None
        assert tracker.attainment(1.0) is None

    def test_single_sample(self):
        tracker = RollingPercentileTracker(window_seconds=10.0)
        tracker.observe(1.0, 4.0)
        assert tracker.percentile(50.0) == 4.0
        assert tracker.percentile(99.0) == 4.0
        assert tracker.attainment(4.0) == 1.0
        assert tracker.attainment(3.9) == 0.0

    def test_eviction_exactly_at_boundary(self):
        # Pruning drops samples *strictly* older than the horizon: a
        # sample aged exactly window_seconds is still in-window.
        tracker = RollingPercentileTracker(window_seconds=10.0)
        tracker.observe(0.0, 1.0)
        tracker.observe(5.0, 2.0)
        assert tracker.values(now=10.0) == [1.0, 2.0]
        # One tick past the boundary evicts it.
        assert tracker.values(now=10.0 + 1e-9) == [2.0]
        # ...but total_observations survives pruning.
        assert tracker.total_observations == 2
        assert len(tracker) == 1

    def test_attainment_over_window(self):
        tracker = RollingPercentileTracker(window_seconds=10.0)
        for time, value in ((0.0, 9.0), (6.0, 1.0), (8.0, 2.0)):
            tracker.observe(time, value)
        # At now=12 the slow sample at t=0 has aged out.
        assert tracker.attainment(3.0, now=12.0) == 1.0

    def test_unwindowed_tracker_never_prunes(self):
        tracker = RollingPercentileTracker(window_seconds=None)
        tracker.observe(0.0, 1.0)
        tracker.observe(100.0, 3.0)
        assert tracker.values(now=1e9) == [1.0, 3.0]

    def test_time_regression_rejected(self):
        tracker = RollingPercentileTracker(window_seconds=10.0)
        tracker.observe(5.0, 1.0)
        with pytest.raises(ConfigError):
            tracker.observe(4.0, 1.0)

    def test_nonpositive_window_rejected(self):
        with pytest.raises(ConfigError):
            RollingPercentileTracker(window_seconds=0.0)
        with pytest.raises(ConfigError):
            RollingPercentileTracker(window_seconds=-1.0)

    def test_randomized_equivalence_with_naive_reference(self):
        # The tracker maintains a bisect-sorted companion list; its
        # answers must be bit-identical to pruning the raw sample list
        # and calling stats.percentile / a counting loop on every query.
        # Duplicated values and duplicated timestamps are exercised on
        # purpose — both stress the leftmost-equal removal in prune().
        rng = random.Random(0xC0FFEE)
        for window in (5.0, 17.0, None):
            tracker = RollingPercentileTracker(window_seconds=window)
            naive: list = []  # (time, value), never pruned
            now = 0.0
            query_now = 0.0  # pruning is destructive, so queries advance
            for _ in range(400):
                now += rng.choice((0.0, 0.0, rng.expovariate(1.0)))
                value = rng.choice(
                    (rng.uniform(0.0, 10.0), round(rng.uniform(0.0, 10.0)))
                )
                tracker.observe(now, value)
                naive.append((now, value))
                query_now = max(query_now, now + rng.uniform(0.0, 3.0))
                if window is None:
                    in_window = [v for _, v in naive]
                else:
                    horizon = query_now - window
                    in_window = [v for t, v in naive if t >= horizon]
                q = rng.uniform(0.0, 100.0)
                threshold = rng.uniform(0.0, 10.0)
                assert tracker.percentile(q, now=query_now) == percentile(
                    in_window, q
                )
                assert tracker.attainment(
                    threshold, now=query_now
                ) == sum(1 for v in in_window if v <= threshold) / len(
                    in_window
                )
                assert tracker.values() == in_window
                assert sorted(in_window) == tracker._sorted


class TestRunReportToJson:
    def test_none_on_empty_maps_only_valueerror(self):
        assert none_on_empty(lambda: 3.0) == 3.0
        assert none_on_empty(lambda: (_ for _ in ()).throw(ValueError())) is None

    def test_empty_report_serializes_with_none_summaries(self):
        report = RunReport(
            requests=[], metrics=MetricsCollector(),
            start_time=0.0, end_time=0.0,
        )
        document = report.to_json()
        assert document["num_requests"] == 0
        assert document["num_finished"] == 0
        assert document["requests_per_minute"] is None
        assert document["median_latency"] is None
        assert document["p99_ttft"] is None
        assert document["decode_throughput"] is None
        assert "prefix_cache" not in document
        json.dumps(document)  # the whole document must be JSON-able

    def test_populated_report_round_trips_accessors(self):
        request = Request(request_id="a", prompt_len=10, max_new_tokens=1,
                          arrival_time=0.0)
        request.state = RequestState.RUNNING
        request.record_prefill(now=30.0)
        request.finish(now=30.0)
        metrics = MetricsCollector()
        metrics.record(record("decode", 0.01, tokens=4))
        report = RunReport(
            requests=[request], metrics=metrics,
            start_time=0.0, end_time=60.0,
        )
        document = report.to_json()
        assert document["num_finished"] == 1
        assert document["makespan"] == 60.0
        assert document["requests_per_minute"] == pytest.approx(
            report.requests_per_minute()
        )
        assert document["mean_ttft"] == pytest.approx(report.mean_ttft())
        assert document["decode_throughput"] == pytest.approx(
            metrics.decode_throughput()
        )
        # Prefill never ran: per-phase absence is None, not an error.
        assert document["prefill_throughput"] is None
