"""Radix-tree prefix index: matching, splitting, refcounts, LRU."""

import pytest

from repro.cache.radix import RadixTree
from repro.errors import SchedulingError


def ids(*runs):
    """Build a token-id tuple from (base, length) runs."""
    out = []
    for base, length in runs:
        out.extend(base * 1000 + i for i in range(length))
    return tuple(out)


class TestInsertAndMatch:
    def test_empty_tree_misses(self):
        tree = RadixTree()
        entry, matched = tree.match_prefix(ids((1, 8)))
        assert entry is None and matched == 0
        assert tree.stats.misses == 1

    def test_exact_match(self):
        tree = RadixTree()
        tree.insert(ids((1, 8)), slot=0, group="g", live=False)
        entry, matched = tree.match_prefix(ids((1, 8)))
        assert entry is not None
        assert matched == 8
        assert tree.stats.hits == 1
        assert tree.stats.hit_tokens == 8

    def test_query_longer_than_entry(self):
        tree = RadixTree()
        tree.insert(ids((1, 8)), slot=0, group="g", live=False)
        _, matched = tree.match_prefix(ids((1, 8), (2, 4)))
        assert matched == 8

    def test_query_shorter_than_entry(self):
        tree = RadixTree()
        tree.insert(ids((1, 8), (2, 4)), slot=0, group="g", live=False)
        _, matched = tree.match_prefix(ids((1, 8)))
        assert matched == 8

    def test_partial_overlap_mid_edge(self):
        tree = RadixTree()
        tree.insert(ids((1, 8)), slot=0, group="g", live=False)
        _, matched = tree.match_prefix(ids((1, 5), (9, 5)))
        assert matched == 5

    def test_divergence_at_split_node(self):
        # Two entries sharing a prefix force an edge split; a third
        # query diverging exactly at the split node must still match.
        tree = RadixTree()
        tree.insert(ids((1, 8), (2, 4)), slot=0, group="g", live=False)
        tree.insert(ids((1, 8), (3, 4)), slot=1, group="g", live=False)
        entry, matched = tree.match_prefix(ids((1, 8), (4, 4)))
        assert entry is not None
        assert matched == 8

    def test_unusable_match_counts_as_miss(self):
        # A 1-token prompt can never reuse a prefix (the prefill must
        # still compute its one token): with limit=0 the lookup is a
        # miss and must not disturb hit stats or LRU order.
        tree = RadixTree()
        entry = tree.insert(ids((1, 4)), slot=0, group="g", live=False,
                            now=1.0)
        found, matched = tree.match_prefix(ids((1, 4)), now=9.0, limit=0)
        assert found is None and matched == 0
        assert tree.stats.hits == 0 and tree.stats.misses == 1
        assert entry.last_access == 1.0  # LRU untouched
        _, matched = tree.match_prefix(ids((1, 4)), limit=2)
        assert matched == 2

    def test_disjoint_groups_do_not_match(self):
        tree = RadixTree()
        tree.insert(ids((1, 8)), slot=0, group="a", live=False)
        entry, matched = tree.match_prefix(ids((2, 8)))
        assert entry is None and matched == 0

    def test_longest_entry_wins(self):
        tree = RadixTree()
        short = tree.insert(ids((1, 4)), slot=0, group="g", live=False)
        long = tree.insert(ids((1, 4), (2, 4)), slot=1, group="g", live=False)
        entry, matched = tree.match_prefix(ids((1, 4), (2, 4), (3, 2)))
        assert entry is long
        assert matched == 8
        entry, matched = tree.match_prefix(ids((1, 4), (9, 2)))
        assert entry is short
        assert matched == 4

    def test_duplicate_insert_declined(self):
        tree = RadixTree()
        assert tree.insert(ids((1, 8)), slot=0, group="g", live=False)
        assert tree.insert(ids((1, 8)), slot=1, group="g", live=False) is None
        # A strict prefix of an existing entry is also already covered.
        assert tree.insert(ids((1, 4)), slot=2, group="g", live=False) is None
        assert tree.stats.duplicate_insertions == 2
        assert tree.entry_count == 1

    def test_longer_prompt_is_not_a_duplicate(self):
        tree = RadixTree()
        tree.insert(ids((1, 8)), slot=0, group="g", live=False)
        assert tree.insert(ids((1, 8), (2, 4)), slot=1, group="g", live=False)
        assert tree.entry_count == 2

    def test_empty_ids_declined(self):
        tree = RadixTree()
        assert tree.insert((), slot=0, group="g", live=False) is None


class TestRemoveAndPrune:
    def test_remove_then_miss(self):
        tree = RadixTree()
        entry = tree.insert(ids((1, 8)), slot=0, group="g", live=False)
        tree.remove(entry)
        found, matched = tree.match_prefix(ids((1, 8)))
        assert found is None and matched == 0
        assert tree.entry_count == 0

    def test_remove_keeps_siblings(self):
        tree = RadixTree()
        a = tree.insert(ids((1, 8), (2, 4)), slot=0, group="g", live=False)
        b = tree.insert(ids((1, 8), (3, 4)), slot=1, group="g", live=False)
        tree.remove(a)
        found, matched = tree.match_prefix(ids((1, 8), (3, 4)))
        assert found is b and matched == 12

    def test_double_remove_rejected(self):
        tree = RadixTree()
        entry = tree.insert(ids((1, 8)), slot=0, group="g", live=False)
        tree.remove(entry)
        with pytest.raises(SchedulingError):
            tree.remove(entry)


class TestEviction:
    def test_lru_order(self):
        tree = RadixTree()
        old = tree.insert(ids((1, 4)), slot=0, group="g", live=False, now=1.0)
        new = tree.insert(ids((2, 4)), slot=1, group="g", live=False, now=2.0)
        assert tree.evict_lru() is old
        assert tree.evict_lru() is new
        assert tree.evict_lru() is None
        assert tree.stats.evictions == 2

    def test_hit_refreshes_lru(self):
        tree = RadixTree()
        a = tree.insert(ids((1, 4)), slot=0, group="g", live=False, now=1.0)
        b = tree.insert(ids((2, 4)), slot=1, group="g", live=False, now=2.0)
        tree.match_prefix(ids((1, 4)), now=3.0)  # touch a
        assert tree.evict_lru() is b

    def test_referenced_entry_protected(self):
        tree = RadixTree()
        entry = tree.insert(ids((1, 4)), slot=0, group="g", live=False)
        entry.ref_count = 1
        assert tree.evict_lru() is None
        entry.ref_count = 0
        assert tree.evict_lru() is entry

    def test_live_entry_protected(self):
        tree = RadixTree()
        entry = tree.insert(ids((1, 4)), slot=0, group="g", live=True)
        assert tree.evict_lru() is None
        entry.live = False
        assert tree.evict_lru() is entry


class TestProbe:
    def test_probe_matches_like_match_prefix(self):
        tree = RadixTree()
        tree.insert(ids((1, 8), (2, 4)), slot=0, group="g", live=False)
        entry, matched = tree.probe(ids((1, 8)))
        assert entry is not None
        assert matched == 8
        entry, matched = tree.probe(ids((1, 8), (2, 4), (3, 2)))
        assert matched == 12
        assert tree.probe(ids((9, 4))) == (None, 0)

    def test_probe_respects_limit(self):
        tree = RadixTree()
        tree.insert(ids((1, 8)), slot=0, group="g", live=False)
        _, matched = tree.probe(ids((1, 8)), limit=3)
        assert matched == 3
        assert tree.probe(ids((1, 8)), limit=0) == (None, 0)

    def test_probe_leaves_state_untouched(self):
        # The cluster router probes every replica per routing decision;
        # probes must not skew hit statistics or refresh LRU order.
        tree = RadixTree()
        entry = tree.insert(
            ids((1, 8)), slot=0, group="g", live=False, now=5.0
        )
        for _ in range(3):
            tree.probe(ids((1, 8)))
            tree.probe(ids((9, 8)))
        assert tree.stats.lookups == 0
        assert tree.stats.hits == 0
        assert tree.stats.misses == 0
        assert tree.stats.hit_tokens == 0
        assert entry.hits == 0
        assert entry.last_access == 5.0


class TestStats:
    def test_hit_rate(self):
        tree = RadixTree()
        tree.insert(ids((1, 8)), slot=0, group="g", live=False)
        tree.match_prefix(ids((1, 8)))
        tree.match_prefix(ids((9, 8)))
        assert tree.stats.hit_rate == pytest.approx(0.5)

    def test_cached_tokens_counts_cache_owned_only(self):
        tree = RadixTree()
        tree.insert(ids((1, 8)), slot=0, group="g", live=False)
        tree.insert(ids((2, 6)), slot=1, group="g", live=True)
        assert tree.cached_tokens == 8
