"""Cross-module integration: full flows through the whole stack."""

import pytest

from repro.errors import AllocationFailed
from repro.experiments.common import PAPER_CONFIGS, paper_engine
from repro.gpu.spec import A100
from repro.models.zoo import LLAMA3_8B, YI_34B, YI_6B
from repro.serving.engine import EngineConfig, LLMEngine
from repro.models.shard import ShardedModel
from repro.units import GB, KB
from repro.workloads.arrival import poisson_arrivals
from repro.workloads.traces import fixed_trace, sharegpt_trace


class TestPaperConfigurations:
    @pytest.mark.parametrize("label", sorted(PAPER_CONFIGS))
    def test_every_labeled_system_serves(self, label):
        engine = paper_engine(label, YI_6B, max_batch_size=4)
        engine.submit(fixed_trace(count=4, prompt_len=4_000, max_new_tokens=8))
        report = engine.run()
        assert len(report.finished_requests) == 4

    @pytest.mark.parametrize(
        "model", [YI_6B, LLAMA3_8B, YI_34B], ids=lambda m: m.name
    )
    def test_every_model_at_paper_deployment(self, model):
        engine = paper_engine("FA2_vAttention", model, max_batch_size=4)
        engine.submit(fixed_trace(count=2, prompt_len=8_000, max_new_tokens=8))
        report = engine.run()
        assert len(report.finished_requests) == 2

    def test_fa3_requires_hopper(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            paper_engine("FA3_vAttention", YI_6B, gpu=A100)

    def test_unknown_label(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            paper_engine("FA9_hyper", YI_6B)


class TestMemoryConservation:
    """Physical memory is exactly conserved across full serving runs."""

    @pytest.mark.parametrize("backend", ["vattention", "paged", "uvm"])
    def test_pool_consistent_after_run(self, backend):
        kernel = "fa2_paged" if backend == "paged" else "fa2"
        engine = LLMEngine(
            EngineConfig(
                shard=ShardedModel(YI_6B, 1),
                gpu=A100,
                memory_backend=backend,
                prefill_kernel=kernel,
                decode_kernel=kernel,
                block_size=256,
                max_batch_size=4,
            )
        )
        engine.submit(fixed_trace(count=6, prompt_len=3_000, max_new_tokens=10))
        engine.run()
        pool = engine.device.pool
        assert 0 <= pool.committed <= pool.capacity
        assert pool.high_water_mark <= pool.capacity

    def test_vattention_shutdown_returns_everything(self):
        engine = LLMEngine(
            EngineConfig(
                shard=ShardedModel(YI_6B, 1),
                gpu=A100,
                memory_backend="vattention",
                max_batch_size=4,
            )
        )
        engine.submit(fixed_trace(count=4, prompt_len=3_000, max_new_tokens=5))
        engine.run()
        engine.memory.manager.shutdown()
        # Only rows were owned by vAttention; nothing leaks.
        assert engine.device.pool.committed == 0


class TestChatWorkloadEndToEnd:
    def test_sharegpt_trace_serves_with_small_pages(self):
        engine = paper_engine(
            "FA2_vAttention", YI_6B,
            max_batch_size=32, page_group_size=64 * KB,
        )
        arrivals = poisson_arrivals(5.0, 60, seed=9)
        engine.submit(sharegpt_trace(arrivals, seed=9))
        report = engine.run()
        assert len(report.finished_requests) == 60
        # Chat decodes dominate: more decode than prefill iterations.
        assert len(report.metrics.of_phase("decode")) > len(
            report.metrics.of_phase("prefill")
        )

    def test_identical_trace_identical_results(self):
        # The whole stack is deterministic end to end.
        def run():
            engine = paper_engine("FA2_vAttention", YI_6B, max_batch_size=8)
            arrivals = poisson_arrivals(2.0, 20, seed=5)
            engine.submit(sharegpt_trace(arrivals, seed=5))
            report = engine.run()
            return (
                report.makespan,
                tuple(sorted(report.e2e_latencies())),
            )

        assert run() == run()


class TestPressureScenarios:
    def test_single_oversized_request_fails_loudly(self):
        engine = LLMEngine(
            EngineConfig(
                shard=ShardedModel(YI_6B, 1),
                gpu=A100,
                memory_backend="vattention",
                max_batch_size=2,
                kv_budget_bytes=1 * GB,
                eager_allocation=False,
            )
        )
        # 16K prompt needs ~1GB; +growth it cannot fit in 1GB of rows.
        engine.submit(fixed_trace(count=1, prompt_len=16_380, max_new_tokens=5_000))
        with pytest.raises(AllocationFailed):
            engine.run()

    def test_partial_report_after_failure(self):
        engine = LLMEngine(
            EngineConfig(
                shard=ShardedModel(YI_6B, 1),
                gpu=A100,
                memory_backend="vattention",
                max_batch_size=2,
                kv_budget_bytes=1 * GB,
                eager_allocation=False,
            )
        )
        engine.submit(fixed_trace(count=1, prompt_len=2_000, max_new_tokens=5))
        engine.submit(fixed_trace(
            count=1, prompt_len=16_380, max_new_tokens=5_000, name="big",
            arrivals=[100.0],
        ))
        with pytest.raises(AllocationFailed):
            engine.run()
        report = engine.partial_report()
        assert len(report.finished_requests) == 1
