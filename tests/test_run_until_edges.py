"""``run_until`` edge cases and the fast path's interplay with them.

The deadline contract: an iteration that *starts* before the deadline
runs to completion (the clock may overshoot by the iteration in
flight), an idle engine never advances past the deadline, and
``max_iterations`` counts fast-forwarded iterations one for one.
"""

import math

import pytest

import repro.serving.engine as engine_module
from repro.gpu.spec import A100
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.serving.engine import EngineConfig, LLMEngine
from repro.serving.request import RequestState
from repro.workloads.traces import fixed_trace


def make_engine(**overrides):
    defaults = dict(
        shard=ShardedModel(YI_6B, 1),
        gpu=A100,
        memory_backend="vattention",
        max_batch_size=8,
    )
    defaults.update(overrides)
    return LLMEngine(EngineConfig(**defaults))


class TestDeadlineOnArrival:
    def test_deadline_exactly_on_arrival_admits_but_runs_nothing(self):
        engine = make_engine()
        start = engine.clock.now
        arrival = start + 5.0
        (request,) = fixed_trace(
            count=1, prompt_len=1_000, max_new_tokens=8, arrivals=[arrival]
        )
        engine.submit([request])
        iterations = engine.run_until(arrival)
        # The clock lands exactly on the arrival; the request is
        # ingested and admitted, but the deadline check fires before
        # any iteration starts.
        assert engine.clock.now == arrival
        assert iterations == 0
        assert request.state is RequestState.RUNNING
        assert request.admitted_time == arrival
        assert request.generated == 0

    def test_later_call_resumes_admitted_request(self):
        engine = make_engine()
        arrival = engine.clock.now + 5.0
        (request,) = fixed_trace(
            count=1, prompt_len=1_000, max_new_tokens=8, arrivals=[arrival]
        )
        engine.submit([request])
        engine.run_until(arrival)
        engine.run_until(math.inf)
        assert request.is_finished


class TestOvershoot:
    def test_prefill_in_flight_overshoots_deadline(self):
        engine = make_engine()
        engine.submit(fixed_trace(count=1, prompt_len=16_384, max_new_tokens=4))
        start = engine.clock.now
        deadline = start + 1e-6  # far shorter than one prefill
        iterations = engine.run_until(deadline)
        assert iterations == 1
        assert engine.clock.now > deadline
        (prefill,) = engine.metrics.of_phase("prefill")
        assert prefill.start_time < deadline

    def test_fast_forwarded_stretch_respects_deadline_starts(self):
        engine = make_engine()
        engine.submit(fixed_trace(count=2, prompt_len=2_000, max_new_tokens=200))
        # Run the prefills, then a sliver of decode.
        engine.run_until(engine.clock.now + 1e-6)
        engine.run_until(engine.clock.now + 1e-6)
        mid = engine.clock.now + 0.25
        engine.run_until(mid)
        # Every recorded iteration (aggregated or not) started before
        # its deadline; the clock may overshoot by at most the decode
        # iteration in flight — far less than one full stretch.
        for record in engine.metrics.iterations:
            assert record.start_time < mid
        assert engine.clock.now >= mid
        last = engine.metrics.iterations[-1]
        overshoot = engine.clock.now - mid
        assert overshoot <= last.latency / max(last.iterations, 1) + 1e-12

    def test_idle_engine_never_advances(self):
        engine = make_engine()
        before = engine.clock.now
        assert engine.run_until(before + 100.0) == 0
        assert engine.clock.now == before

    def test_idle_engine_waits_for_future_arrival(self):
        engine = make_engine()
        now = engine.clock.now
        engine.submit(
            fixed_trace(
                count=1, prompt_len=500, max_new_tokens=4,
                arrivals=[now + 200.0],
            )
        )
        engine.run_until(now + 100.0)
        # The arrival is beyond the deadline: the clock must not run
        # ahead to it (requests dispatched later are not penalized).
        assert engine.clock.now == now


class TestMaxIterationsInterplay:
    @pytest.mark.parametrize("budget", [1, 2, 5, 7])
    def test_fast_path_counts_against_budget(self, budget, monkeypatch):
        def tokens_after(ff):
            monkeypatch.setattr(engine_module, "DEFAULT_FAST_FORWARD", ff)
            engine = make_engine()
            engine.submit(
                fixed_trace(count=1, prompt_len=500, max_new_tokens=64)
            )
            report = engine.run(max_iterations=budget)
            return (
                report.metrics.iteration_count(),
                [r.generated for r in report.requests],
                repr(report.end_time),
            )

        assert tokens_after(True) == tokens_after(False)

    def test_budget_of_one_runs_single_iteration(self):
        engine = make_engine()
        engine.submit(fixed_trace(count=1, prompt_len=500, max_new_tokens=64))
        report = engine.run(max_iterations=1)
        assert report.metrics.iteration_count() == 1
        assert report.metrics.iterations[0].phase == "prefill"


class TestPartialReportStart:
    def test_partial_report_uses_serve_start_not_zero(self):
        engine = make_engine()
        start = engine.clock.now  # device/manager init advanced the clock
        assert start > 0.0
        engine.submit(fixed_trace(count=1, prompt_len=500, max_new_tokens=4))
        engine.run_until(math.inf)
        report = engine.partial_report()
        assert report.start_time == start
        assert report.makespan == report.end_time - start
        # The old behaviour (start_time=0.0) inflated the makespan by
        # the engine's init latency and any pre-serving idle time.
        assert report.makespan < report.end_time

    def test_partial_report_of_never_served_engine_is_empty_window(self):
        engine = make_engine()
        report = engine.partial_report()
        assert report.start_time == report.end_time == engine.clock.now
        assert report.makespan == 0.0

    def test_nonzero_virtual_time_decode_tier_window(self):
        # A run_until-driven engine whose first work lands late (the
        # disaggregated decode-tier shape): the report window starts at
        # the first request's arrival — not at 0, and not at the stale
        # clock value the idle engine held before the work existed.
        engine = make_engine()
        engine.run_until(50.0)  # idle sweeps, as the cluster loop issues
        idle_clock = engine.clock.now
        arrival = idle_clock + 50.0
        (request,) = fixed_trace(
            count=1, prompt_len=500, max_new_tokens=4, arrivals=[arrival]
        )
        engine.submit([request])
        engine.run_until(math.inf)
        report = engine.partial_report()
        assert report.start_time == arrival
        assert report.end_time > arrival
        # The 50 idle seconds before the arrival are not in the window.
        assert report.makespan == report.end_time - arrival
