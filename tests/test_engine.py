"""Continuous-batching engine: Algorithm 1 end to end."""

import pytest

from repro.errors import ConfigError
from repro.gpu.spec import A100, H100
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.serving.engine import EngineConfig, LLMEngine
from repro.units import GB
from repro.workloads.traces import fixed_trace


def make_engine(**overrides) -> LLMEngine:
    defaults = dict(
        shard=ShardedModel(YI_6B, 1),
        gpu=A100,
        memory_backend="vattention",
        prefill_kernel="fa2",
        decode_kernel="fa2",
        max_batch_size=8,
    )
    defaults.update(overrides)
    return LLMEngine(EngineConfig(**defaults))


class TestConfigValidation:
    def test_decode_kernel_layout_must_match_backend(self):
        # A non-paged kernel cannot read a paged pool...
        with pytest.raises(ConfigError):
            make_engine(memory_backend="paged", decode_kernel="fa2")
        # ...and a paged kernel cannot read contiguous vAttention memory.
        with pytest.raises(ConfigError):
            make_engine(memory_backend="vattention", decode_kernel="fa2_paged")

    def test_vllm_style_contiguous_prefill_over_paged_is_allowed(self):
        engine = make_engine(
            memory_backend="paged",
            prefill_kernel="fa2",
            decode_kernel="vllm_paged",
        )
        assert engine.prefill_kernel.info.name == "fa2"

    def test_paged_prefill_over_contiguous_rejected(self):
        with pytest.raises(ConfigError):
            make_engine(
                memory_backend="vattention",
                prefill_kernel="fa2_paged",
                decode_kernel="fa2",
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            make_engine(memory_backend="bogus")

    def test_weights_must_fit(self):
        from repro.models.zoo import GPT3_175B

        with pytest.raises(ConfigError):
            make_engine(shard=ShardedModel(GPT3_175B, 1))


class TestBasicServing:
    def test_all_requests_complete(self):
        engine = make_engine()
        engine.submit(fixed_trace(count=4, prompt_len=1000, max_new_tokens=20))
        report = engine.run()
        assert len(report.finished_requests) == 4
        assert all(r.generated == 20 for r in report.finished_requests)

    def test_prefill_then_decode_phases(self):
        engine = make_engine()
        engine.submit(fixed_trace(count=2, prompt_len=1000, max_new_tokens=5))
        report = engine.run()
        prefills = report.metrics.of_phase("prefill")
        decodes = report.metrics.of_phase("decode")
        assert len(prefills) == 2
        # 2 requests x 4 decode tokens (prefill emits the first).
        assert sum(r.tokens for r in decodes) == 8

    def test_clock_advances_monotonically(self):
        engine = make_engine()
        engine.submit(fixed_trace(count=2, prompt_len=500, max_new_tokens=5))
        report = engine.run()
        times = [r.start_time for r in report.metrics.iterations]
        assert times == sorted(times)
        assert report.makespan > 0

    def test_max_iterations_cap(self):
        engine = make_engine()
        engine.submit(fixed_trace(count=1, prompt_len=500, max_new_tokens=50))
        report = engine.run(max_iterations=5)
        # Fast-forwarded stretches count against the cap one iteration
        # at a time (a record may cover several of them).
        assert report.metrics.iteration_count() == 5
        assert sum(r.tokens for r in report.metrics.iterations) == 500 + 4

    def test_batch_cap_respected(self):
        engine = make_engine(max_batch_size=2)
        engine.submit(fixed_trace(count=6, prompt_len=500, max_new_tokens=5))
        report = engine.run()
        assert max(r.batch_size for r in report.metrics.iterations) <= 2
        assert len(report.finished_requests) == 6


class TestOnlineArrivals:
    def test_engine_waits_for_arrivals(self):
        engine = make_engine()
        trace = fixed_trace(
            count=2, prompt_len=500, max_new_tokens=3,
            arrivals=[100.0, 200.0],
        )
        engine.submit(trace)
        report = engine.run()
        assert report.end_time >= 200.0
        assert all(r.is_finished for r in report.requests)

    def test_latency_includes_queueing(self):
        engine = make_engine(max_batch_size=1)
        trace = fixed_trace(count=3, prompt_len=16_384, max_new_tokens=3)
        engine.submit(trace)
        report = engine.run()
        latencies = sorted(report.e2e_latencies())
        # With batch 1, the third request waits for two full services.
        assert latencies[2] > 2 * latencies[0] * 0.9


class TestPreemption:
    def test_oversubscribed_memory_preempts_and_completes(self):
        # 3GB of KV: two 16K Yi-6B requests (1GB each) fit, but decode
        # growth plus a third forces preemption; everything still ends.
        engine = make_engine(
            kv_budget_bytes=3 * GB,
            max_batch_size=4,
            eager_allocation=False,
        )
        engine.submit(fixed_trace(count=3, prompt_len=16_000, max_new_tokens=30))
        report = engine.run()
        assert len(report.finished_requests) == 3

    def test_preempted_request_reruns_prefill(self):
        engine = make_engine(
            kv_budget_bytes=3 * GB, max_batch_size=4, eager_allocation=False
        )
        engine.submit(fixed_trace(count=3, prompt_len=16_000, max_new_tokens=30))
        report = engine.run()
        total_preemptions = sum(r.preemptions for r in report.requests)
        prefills = len(report.metrics.of_phase("prefill"))
        assert prefills == 3 + total_preemptions


class TestBackendsProduceSameResults:
    @pytest.mark.parametrize(
        "backend,prefill,decode,block",
        [
            ("vattention", "fa2", "fa2", 16),
            ("paged", "fa2_paged", "fa2_paged", 256),
            ("paged", "fi_paged", "fi_paged", 16),
            ("paged", "fa2", "vllm_paged", 16),
            ("static", "fa2", "fa2", 16),
        ],
    )
    def test_all_configurations_serve(self, backend, prefill, decode, block):
        engine = make_engine(
            memory_backend=backend,
            prefill_kernel=prefill,
            decode_kernel=decode,
            block_size=block,
            max_batch_size=1 if backend == "static" else 4,
        )
        count = 1 if backend == "static" else 4
        engine.submit(fixed_trace(count=count, prompt_len=2000, max_new_tokens=5))
        report = engine.run()
        assert len(report.finished_requests) == count


class TestH100:
    def test_fa3_engine_runs_on_h100(self):
        engine = make_engine(
            gpu=H100, prefill_kernel="fa3", decode_kernel="fa3"
        )
        engine.submit(fixed_trace(count=2, prompt_len=8000, max_new_tokens=5))
        report = engine.run()
        assert len(report.finished_requests) == 2

    def test_h100_faster_than_a100(self):
        trace = fixed_trace(count=2, prompt_len=32_000, max_new_tokens=5)
        a100 = make_engine()
        a100.submit([t for t in trace])
        a100_report = a100.run()
        h100 = make_engine(gpu=H100)
        h100.submit(fixed_trace(count=2, prompt_len=32_000, max_new_tokens=5))
        h100_report = h100.run()
        assert h100_report.makespan < a100_report.makespan
