"""Cluster serving: router policies, shared virtual time, disaggregation."""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterEngine,
    MigrationLink,
    NVLINK,
    PCIE,
    ROUTING_POLICIES,
    get_interconnect,
    make_policy,
    policy_names,
)
from repro.cluster.router import ReplicaView
from repro.errors import ConfigError, SchedulingError
from repro.gpu.spec import A100
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.serving.engine import EngineConfig, LLMEngine
from repro.workloads.arrival import poisson_arrivals
from repro.workloads.traces import shared_prefix_trace

COUNT = 16
PREFIX = 2_048
SHARING = 8


def engine_config(cache: bool = True, max_batch: int = 8) -> EngineConfig:
    return EngineConfig(
        shard=ShardedModel(YI_6B, 1),
        gpu=A100,
        memory_backend="vattention",
        max_batch_size=max_batch,
        enable_prefix_cache=cache,
    )


def cluster(
    n: int, policy: str = "round_robin", cache: bool = True, **kwargs
) -> ClusterEngine:
    return ClusterEngine(
        ClusterConfig(
            engine=engine_config(cache=cache),
            n_replicas=n,
            routing_policy=policy,
            **kwargs,
        )
    )


def trace(count: int = COUNT, qps: float = 4.0, seed: int = 31):
    arrivals = poisson_arrivals(qps=qps, count=count, seed=seed)
    return shared_prefix_trace(
        count=count,
        sharing_factor=SHARING,
        prefix_tokens=PREFIX,
        arrivals=arrivals,
    )


# ----------------------------------------------------------------------
# Configuration validation
# ----------------------------------------------------------------------
class TestClusterConfig:
    def test_rejects_bad_replica_count(self):
        with pytest.raises(ConfigError):
            ClusterConfig(engine=engine_config(), n_replicas=0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigError):
            ClusterConfig(
                engine=engine_config(), n_replicas=2, routing_policy="random"
            )

    def test_rejects_unknown_interconnect(self):
        with pytest.raises(ConfigError):
            ClusterConfig(
                engine=engine_config(), n_replicas=2, interconnect="infiniband"
            )

    def test_disaggregation_needs_two_tiers(self):
        with pytest.raises(ConfigError):
            ClusterConfig(
                engine=engine_config(), n_replicas=1, disaggregated=True
            )
        with pytest.raises(ConfigError):
            ClusterConfig(
                engine=engine_config(),
                n_replicas=4,
                disaggregated=True,
                n_prefill_replicas=4,
            )

    def test_cache_aware_requires_prefix_cache(self):
        with pytest.raises(ConfigError):
            ClusterConfig(
                engine=engine_config(cache=False),
                n_replicas=2,
                routing_policy="cache_aware",
            )

    def test_submit_after_run_rejected(self):
        c = cluster(1)
        c.submit(trace(count=2))
        c.run()
        with pytest.raises(SchedulingError):
            c.submit(trace(count=2))


# ----------------------------------------------------------------------
# Routing policies over fake replicas
# ----------------------------------------------------------------------
class FakeReplica(ReplicaView):
    def __init__(self, index, load=0, matches=None):
        self.index = index
        self.load = load
        self.matches = dict(matches or {})

    @property
    def outstanding_tokens(self):
        return self.load

    def probe_prefix(self, request):
        return self.matches.get(request.request_id, 0)


def _req(rid="r0"):
    from repro.serving.request import Request

    return Request(request_id=rid, prompt_len=64, max_new_tokens=8)


class TestPolicies:
    def test_registry(self):
        assert set(policy_names()) == {
            "round_robin",
            "least_outstanding_tokens",
            "cache_aware",
        }
        assert set(ROUTING_POLICIES) == set(policy_names())
        with pytest.raises(ConfigError):
            make_policy("power_of_two")

    def test_round_robin_cycles(self):
        policy = make_policy("round_robin")
        replicas = [FakeReplica(i) for i in range(3)]
        picks = [policy.select(_req(), replicas).index for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_outstanding_breaks_ties_by_index(self):
        policy = make_policy("least_outstanding_tokens")
        replicas = [
            FakeReplica(0, load=10),
            FakeReplica(1, load=5),
            FakeReplica(2, load=5),
        ]
        assert policy.select(_req(), replicas).index == 1

    def test_cache_aware_prefers_longest_match(self):
        policy = make_policy("cache_aware")
        replicas = [
            FakeReplica(0, load=100, matches={"r0": 512}),
            FakeReplica(1, load=0, matches={"r0": 2048}),
            FakeReplica(2, load=50),
        ]
        assert policy.select(_req(), replicas).index == 1

    def test_cache_aware_without_match_places_for_load(self):
        policy = make_policy("cache_aware")
        replicas = [FakeReplica(0, load=100), FakeReplica(1, load=3)]
        assert policy.select(_req(), replicas).index == 1

    def test_cache_aware_imbalance_cap_overrides_affinity(self):
        policy = make_policy(
            "cache_aware", balance_abs_tokens=1_000, balance_rel=1.5
        )
        # Replica 0 holds the whole prefix but is drowning in backlog:
        # both imbalance thresholds trip, so load wins.
        replicas = [
            FakeReplica(0, load=50_000, matches={"r0": 2048}),
            FakeReplica(1, load=100),
        ]
        assert policy.select(_req(), replicas).index == 1
        # An even fleet keeps its affinity even with the same caps.
        replicas[0].load = 120
        assert policy.select(_req(), replicas).index == 0

    def test_cache_aware_validates_caps(self):
        with pytest.raises(ConfigError):
            make_policy("cache_aware", balance_abs_tokens=-1)
        with pytest.raises(ConfigError):
            make_policy("cache_aware", balance_rel=0.5)


# ----------------------------------------------------------------------
# Interconnect link
# ----------------------------------------------------------------------
class TestMigrationLink:
    def test_specs(self):
        assert get_interconnect("nvlink") is NVLINK
        assert get_interconnect("pcie") is PCIE
        assert NVLINK.bandwidth > PCIE.bandwidth
        with pytest.raises(ConfigError):
            get_interconnect("carrier-pigeon")

    def test_transfers_serialize(self):
        link = MigrationLink(NVLINK)
        nbytes = int(NVLINK.bandwidth)  # exactly one second of streaming
        start1, done1 = link.transfer(10.0, nbytes)
        assert start1 == 10.0
        assert done1 == pytest.approx(11.0 + NVLINK.setup_latency)
        # Requested while the link is busy: queues behind transfer 1.
        start2, done2 = link.transfer(10.5, nbytes)
        assert start2 == done1
        assert done2 == pytest.approx(done1 + 1.0 + NVLINK.setup_latency)
        assert link.transfers == 2
        assert link.migrated_bytes == 2 * nbytes
        assert link.busy_seconds == pytest.approx(
            2.0 + 2 * NVLINK.setup_latency
        )


# ----------------------------------------------------------------------
# Cluster runs on shared virtual time
# ----------------------------------------------------------------------
class TestClusterEngine:
    def test_single_replica_matches_direct_engine(self):
        # One replica behind the router must serve exactly like the
        # bare engine: same finish count, same per-request latencies,
        # same cache statistics.
        direct = LLMEngine(engine_config())
        direct.submit(trace())
        direct_report = direct.run()

        c = cluster(1)
        c.submit(trace())
        cluster_report = c.run()

        assert len(cluster_report.finished_records) == len(
            direct_report.finished_requests
        )
        assert sorted(cluster_report.e2e_latencies()) == pytest.approx(
            sorted(direct_report.e2e_latencies())
        )
        replica_cache = cluster_report.replica_reports[0].prefix_cache
        assert replica_cache.hits == direct_report.prefix_cache.hits
        assert replica_cache.lookups == direct_report.prefix_cache.lookups

    def test_round_robin_balances_requests(self):
        c = cluster(4)
        c.submit(trace())
        report = c.run()
        assert report.requests_per_replica == (4, 4, 4, 4)
        assert len(report.finished_records) == COUNT

    def test_cache_aware_builds_affinity(self):
        c = cluster(2, policy="cache_aware")
        c.submit(trace())
        report = c.run()
        assert len(report.finished_records) == COUNT
        # Each prompt family converges onto one replica, so fleet-level
        # hit statistics exist and cover most repeat requests.
        assert report.cache_hit_rate > 0.5

    def test_deterministic_for_fixed_seed(self):
        reports = []
        for _ in range(2):
            c = cluster(3, policy="cache_aware")
            c.submit(trace())
            reports.append(c.run())
        first, second = reports
        assert first.end_time == second.end_time
        assert first.ttfts() == second.ttfts()
        assert first.e2e_latencies() == second.e2e_latencies()
        assert first.requests_per_replica == second.requests_per_replica
        assert first.cache_hit_rate == second.cache_hit_rate

    def test_report_aggregates(self):
        c = cluster(2)
        c.submit(trace())
        report = c.run()
        assert report.n_replicas == 2
        assert len(report.replica_reports) == 2
        assert report.makespan > 0
        assert report.requests_per_minute() > 0
        assert report.median_ttft() <= report.p99_ttft()
        assert report.median_latency() <= report.p99_latency()
        assert len(report.replica_hit_rates) == 2
        # Aggregated mode: no migrations.
        assert report.migrations == 0
        assert report.migrated_bytes == 0

    def test_outstanding_tokens_tracks_backlog(self):
        engine = LLMEngine(engine_config())
        assert engine.outstanding_tokens == 0
        requests = trace(count=4)
        engine.submit(requests)
        expected = sum(r.prompt_len + r.max_new_tokens for r in requests)
        assert engine.outstanding_tokens == expected
        engine.run()
        assert engine.outstanding_tokens == 0


class TestDisaggregation:
    def _run(self, interconnect="nvlink"):
        c = cluster(
            2,
            disaggregated=True,
            n_prefill_replicas=1,
            interconnect=interconnect,
        )
        requests = trace()
        c.submit(requests)
        return requests, c.run()

    def test_every_request_migrates_once(self):
        requests, report = self._run()
        migratable = [r for r in requests if r.max_new_tokens > 1]
        assert report.migrations == len(migratable)
        assert len(report.finished_records) == COUNT
        shard = ShardedModel(YI_6B, 1)
        expected = sum(
            (r.prompt_len + 1) * shard.kv_bytes_per_token
            for r in migratable
        )
        assert report.migrated_bytes == expected
        assert report.migration_seconds > 0

    def test_tiers_split_the_work(self):
        _, report = self._run()
        prefill_metrics = report.replica_reports[0].metrics
        decode_metrics = report.replica_reports[1].metrics
        # The prefill tier runs prompts (plus the single first-token
        # step embedded in each prefill); the decode tier never
        # prefills — migrated KV arrives resident.
        assert len(prefill_metrics.of_phase("prefill")) > 0
        assert len(decode_metrics.of_phase("prefill")) == 0
        assert len(decode_metrics.of_phase("decode")) > 0
        for record in report.records:
            if record.decode_request is not None:
                assert record.replica == 0
                assert record.decode_replica == 1
                assert record.migrated_bytes > 0

    def test_migration_delay_reaches_latency(self):
        _, nvlink_report = self._run("nvlink")
        _, pcie_report = self._run("pcie")
        assert (
            pcie_report.migrated_bytes == nvlink_report.migrated_bytes
        )
        assert (
            pcie_report.migration_seconds
            > nvlink_report.migration_seconds
        )
        # Slower interconnect, no faster end-to-end.
        assert (
            pcie_report.median_latency()
            >= nvlink_report.median_latency() - 1e-9
        )

    def test_logical_latencies_stitch_across_tiers(self):
        _, report = self._run()
        for record in report.finished_records:
            assert record.ttft > 0
            assert record.e2e_latency >= record.ttft
            if record.decode_request is not None:
                # The continuation finishes after the handoff lands.
                assert (
                    record.decode_request.finish_time
                    >= record.serve_request.finish_time
                    + record.migration_seconds
                )


# ----------------------------------------------------------------------
# Per-tier scheduler policies
# ----------------------------------------------------------------------
class TestClusterSchedulerPolicies:
    def test_fleet_policy_reaches_every_replica(self):
        c = cluster(2, scheduler_policy="hybrid")
        assert all(
            r.engine.scheduler.name == "hybrid" for r in c.replicas
        )
        # The template config is untouched (replicas get a copy).
        assert c.config.engine.scheduler_policy == "fcfs"

    def test_default_keeps_engine_config_policy(self):
        c = cluster(2)
        assert all(r.engine.scheduler.name == "fcfs" for r in c.replicas)

    def test_prefill_tier_override(self):
        c = cluster(
            3,
            disaggregated=True,
            n_prefill_replicas=1,
            prefill_scheduler_policy="hybrid",
        )
        by_role = {r.role: r.engine.scheduler.name for r in c.replicas}
        assert by_role["prefill"] == "hybrid"
        assert by_role["decode"] == "fcfs"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            cluster(2, scheduler_policy="edf")
        with pytest.raises(ConfigError):
            cluster(
                2,
                disaggregated=True,
                n_prefill_replicas=1,
                prefill_scheduler_policy="edf",
            )

    def test_prefill_override_requires_disaggregation(self):
        with pytest.raises(ConfigError):
            cluster(2, prefill_scheduler_policy="hybrid")

    def test_hybrid_fleet_serves_the_trace(self):
        c = cluster(2, scheduler_policy="hybrid")
        c.submit(trace())
        report = c.run()
        assert len(report.finished_records) == COUNT

    def test_disaggregated_hybrid_prefill_tier_serves(self):
        c = cluster(
            2,
            disaggregated=True,
            n_prefill_replicas=1,
            prefill_scheduler_policy="hybrid",
        )
        c.submit(trace())
        report = c.run()
        assert len(report.finished_records) == COUNT
        # Hybrid prefill tier chunks prompts: mixed iterations ran.
        prefill_metrics = report.replica_reports[0].metrics
        assert len(prefill_metrics.of_phase("mixed")) > 0
