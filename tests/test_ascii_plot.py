"""Terminal plotting helpers."""

import pytest

from repro.metrics.ascii_plot import (
    bar_chart,
    cdf_plot,
    normalized_bars,
    sparkline,
)


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] < line[-1]  # block glyphs sort by height

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestBarChart:
    def test_scales_to_peak(self):
        chart = bar_chart([("a", 10.0), ("b", 5.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_aligned(self):
        chart = bar_chart([("short", 1.0), ("longer-label", 2.0)])
        lines = chart.splitlines()
        assert lines[0].index("│") == lines[1].index("│")

    def test_unit_suffix(self):
        assert "GB/s" in bar_chart([("x", 7.5)], unit="GB/s")

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            bar_chart([])
        with pytest.raises(ValueError):
            bar_chart([("a", 0.0)])
        with pytest.raises(ValueError):
            bar_chart([("a", 1.0)], width=0)


class TestCdfPlot:
    def test_renders_all_series(self):
        plot = cdf_plot(
            {"paged": [10, 20, 30], "vattn": [5, 10, 15]},
            width=30, height=6,
        )
        assert "* paged" in plot
        assert "o vattn" in plot
        assert "1.0" in plot and "0.0" in plot

    def test_left_shifted_series_rises_earlier(self):
        plot = cdf_plot(
            {"slow": [80.0, 90.0, 100.0, 110.0], "fast": [1.0, 2.0, 3.0, 4.0]},
            width=20, height=5,
        )
        top_line = plot.splitlines()[0].split("┤", 1)[1]
        # The fast series ('o') saturates from the far left; the slow
        # one ('*') only reaches the top row near the right edge.
        assert "o" in top_line[:5]
        assert "*" not in top_line[:10]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_plot({})
        with pytest.raises(ValueError):
            cdf_plot({"x": []})


class TestNormalizedBars:
    def test_baseline_is_one(self):
        plot = normalized_bars(
            [("1K", {"FA2": 2.0, "FA2_Paged": 2.8})], baseline="FA2"
        )
        assert "1.00x" in plot
        assert "1.40x" in plot

    def test_missing_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalized_bars([("g", {"a": 1.0})], baseline="b")

    def test_nonpositive_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalized_bars([("g", {"a": 0.0})], baseline="a")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normalized_bars([], baseline="a")
