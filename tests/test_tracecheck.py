"""The trace checker: synthetic violations and the catalogue gate.

Two layers:

* Synthetic unit tests — hand-built record lists that break exactly one
  invariant each, proving the checker actually detects what it claims
  to (a checker that passes everything proves nothing).
* The catalogue sweep — every experiment in the CLI catalogue runs at
  reduced scale with telemetry *and spans* enabled and its merged trace
  must replay with zero violations, with every attributed request's
  phase buckets closing to its measured wall time. This is the
  standing pytest/CI gate: any change that breaks KV conservation,
  replica lifecycles, request clocks, gauge/event consistency, span
  shape or attribution closure fails here before it ships. Experiments
  that never construct an engine (pure cost-model tables) produce
  empty traces that trivially pass; they stay in the sweep so the
  coverage assertion over the catalogue keys holds as the catalogue
  grows.
"""

import math

import pytest

from repro.__main__ import EXPERIMENTS
from repro.experiments import (
    ext_autoscale,
    ext_chunked_prefill,
    ext_cluster_router,
    ext_kv_tiering,
    ext_large_models,
    ext_prefix_cache,
    ext_prefix_sharing,
    ext_sched_policy,
    ext_swap_policy,
    ext_uvm_limitations,
    fig02_prefill_kernel_overhead,
    fig03_block_size_sensitivity,
    fig04_alloc_bandwidth_demand,
    fig07_prefill_throughput,
    fig08_decode_throughput,
    fig09_offline_throughput,
    fig10_online_latency,
    fig11_fa3_portability,
    fig12_overlap_ablation,
    fig13_deferred_reclamation,
    fig14_page_size_effect,
    fig15_max_batch_size,
    tab03_vmm_latency,
    tab06_prefill_times,
    tab07_decode_kernel_latency,
    tab08_block_sizes,
    tab09_alloc_bandwidth,
    tab10_tensor_slicing,
)
from repro.metrics import attribution
from repro.metrics.telemetry import TelemetryRegistry, enabled
from repro.metrics.tracecheck import (
    TraceViolation,
    assert_clean,
    check_jsonl,
    check_trace,
)
from repro.models.zoo import YI_6B
from repro.units import MB


# ----------------------------------------------------------------------
# Synthetic traces: each breaks exactly one invariant
# ----------------------------------------------------------------------
def _admit(seq, request="a", time=1.0, arrival=0.0, total_len=20,
           scope="r0"):
    return {
        "seq": seq, "time": time, "event": "request_admitted",
        "scope": scope, "request": request, "arrival": arrival,
        "prompt_len": 12, "total_len": total_len,
    }


def _finish(seq, request="a", arrival=0.0, admitted=1.0, first=2.0,
            finish=5.0, prompt_len=12, generated=8, total_len=20,
            capped=False, scope="r0"):
    return {
        "seq": seq, "time": finish, "event": "request_finished",
        "scope": scope, "request": request, "arrival": arrival,
        "admitted": admitted, "first_token": first, "finish": finish,
        "prompt_len": prompt_len, "generated": generated,
        "total_len": total_len, "context_capped": capped,
    }


def _invariants(records):
    return {violation.invariant for violation in check_trace(records)}


class TestSyntheticViolations:
    def test_clean_lifecycle(self):
        assert check_trace([_admit(0), _finish(1)]) == []

    def test_out_of_order_input_is_sorted(self):
        assert check_trace([_finish(1), _admit(0)]) == []

    def test_admitted_before_arrival(self):
        assert _invariants(
            [_admit(0, time=0.5, arrival=1.0)]
        ) == {"monotone-clock"}

    def test_finish_before_first_token(self):
        assert _invariants(
            [_admit(0), _finish(1, first=6.0, finish=5.0)]
        ) == {"monotone-clock"}

    def test_first_token_before_arrival(self):
        assert _invariants(
            [_admit(0, arrival=3.0),
             _finish(1, arrival=3.0, admitted=3.0, first=2.0)]
        ) == {"monotone-clock"}

    def test_token_budget_must_close(self):
        assert _invariants(
            [_admit(0), _finish(1, generated=7)]  # 12 + 7 != 20
        ) == {"token-conservation"}

    def test_context_cap_allows_undershoot_only(self):
        assert check_trace(
            [_admit(0), _finish(1, generated=7, capped=True)]
        ) == []
        assert _invariants(
            [_admit(0), _finish(1, generated=9, capped=True)]  # over budget
        ) == {"token-conservation"}

    def test_readmission_must_keep_total_len(self):
        records = [
            _admit(0),
            {"seq": 1, "time": 2.0, "event": "request_preempted",
             "scope": "r0", "request": "a"},
            _admit(2, time=3.0, total_len=24),
        ]
        assert _invariants(records) == {"token-conservation"}

    def test_double_admit_flagged(self):
        assert _invariants(
            [_admit(0), _admit(1, time=2.0)]
        ) == {"request-lifecycle"}

    def test_finish_without_admit(self):
        assert _invariants([_finish(0)]) == {"request-lifecycle"}

    def test_double_finish(self):
        assert _invariants(
            [_admit(0), _finish(1), _admit(2, time=6.0),
             _finish(3, first=6.5, finish=7.0)]
        ) == {"request-lifecycle"}

    def test_preempt_while_not_running(self):
        assert _invariants(
            [{"seq": 0, "time": 1.0, "event": "request_preempted",
              "scope": "r0", "request": "a"}]
        ) == {"request-lifecycle"}

    def test_same_request_id_in_other_scope_is_distinct(self):
        # Request ids repeat across sweep cells; scopes partition them.
        records = [
            _admit(0), _finish(1),
            _admit(2, scope="r1"), _finish(3, scope="r1"),
        ]
        assert check_trace(records) == []

    # -- replica lifecycle / routing ----------------------------------
    def _replica(self, seq, action, replica=0, n_serving=0, cluster="c0"):
        return {
            "seq": seq, "time": float(seq), "event": "replica_state",
            "cluster": cluster, "replica": replica, "action": action,
            "n_serving": n_serving, "reason": "",
        }

    def _init(self, seq, replica=0, state="serving", cluster="c0"):
        return {
            "seq": seq, "time": 0.0, "event": "replica_init",
            "cluster": cluster, "replica": replica, "role": "unified",
            "state": state,
        }

    def test_replica_full_lifecycle_clean(self):
        records = [
            self._replica(0, "provisioning"),
            self._replica(1, "warming"),
            self._replica(2, "serving", n_serving=1),
            self._replica(3, "draining"),
            self._replica(4, "retired"),
        ]
        assert check_trace(records) == []

    def test_replica_cannot_skip_warming(self):
        records = [
            self._replica(0, "provisioning"),
            self._replica(1, "serving", n_serving=1),
        ]
        assert _invariants(records) == {"replica-lifecycle"}

    def test_replica_must_start_provisioning(self):
        assert _invariants(
            [self._replica(0, "serving", n_serving=1)]
        ) == {"replica-lifecycle"}

    def test_replica_state_n_serving_checked(self):
        records = [
            self._init(0),
            self._replica(1, "draining", n_serving=1),  # replay says 0
        ]
        assert _invariants(records) == {"gauge-reconstruction"}

    def test_routing_to_draining_replica_flagged(self):
        route = {
            "seq": 2, "time": 2.0, "event": "request_routed",
            "cluster": "c0", "replica": 0, "request": "a",
            "prompt_len": 12, "max_new_tokens": 8, "rerouted": False,
        }
        assert check_trace([self._init(0), dict(route, seq=1)]) == []
        assert _invariants(
            [self._init(0), self._replica(1, "draining"), route]
        ) == {"serving-only-routing"}

    def test_routing_to_unknown_replica_flagged(self):
        route = {
            "seq": 0, "time": 0.0, "event": "request_routed",
            "cluster": "c0", "replica": 9, "request": "a",
            "prompt_len": 12, "max_new_tokens": 8, "rerouted": False,
        }
        assert _invariants([route]) == {"serving-only-routing"}

    # -- KV conservation ----------------------------------------------
    def _start(self, seq, transfer=0, nbytes=1024, start=1.0, done=2.0):
        return {
            "seq": seq, "time": 0.5, "event": "migration_start",
            "cluster": "c0", "transfer": transfer, "request": "a",
            "kind": "disagg", "bytes": nbytes, "start": start,
            "done": done,
        }

    def _land(self, seq, transfer=0, nbytes=1024, time=2.0):
        return {
            "seq": seq, "time": time, "event": "migration_land",
            "cluster": "c0", "transfer": transfer, "request": "a",
            "replica": 1, "bytes": nbytes,
        }

    def test_paired_transfer_clean(self):
        assert check_trace([self._start(0), self._land(1)]) == []

    def test_unlanded_transfer_flagged(self):
        assert _invariants([self._start(0)]) == {"kv-conservation"}

    def test_land_without_start_flagged(self):
        assert _invariants([self._land(0)]) == {"kv-conservation"}

    def test_byte_mismatch_flagged(self):
        assert _invariants(
            [self._start(0), self._land(1, nbytes=512)]
        ) == {"kv-conservation"}

    def test_land_time_must_match_link_arrival(self):
        assert _invariants(
            [self._start(0), self._land(1, time=2.5)]
        ) == {"kv-conservation"}

    def test_double_start_flagged(self):
        assert _invariants(
            [self._start(0), self._start(1), self._land(2)]
        ) == {"kv-conservation"}

    # -- gauge reconstruction -----------------------------------------
    def _sample(self, seq, metric, value, scope="r0"):
        return {
            "seq": seq, "time": float(seq), "event": "sample",
            "metric": metric, "scope": scope, "value": value,
        }

    def test_running_gauge_must_match_events(self):
        records = [
            _admit(0),
            self._sample(1, "num_running_reqs", 1.0),
            _finish(2),
            self._sample(6, "num_running_reqs", 0.0),
        ]
        assert check_trace(records) == []
        records[3] = self._sample(6, "num_running_reqs", 1.0)
        assert _invariants(records) == {"gauge-reconstruction"}

    def test_serving_gauge_must_match_events(self):
        records = [
            self._init(0, cluster="c0"),
            self._sample(1, "num_serving_replicas", 2.0, scope="c0"),
        ]
        assert _invariants(records) == {"gauge-reconstruction"}

    def test_unreplayable_gauges_ignored(self):
        assert check_trace(
            [self._sample(0, "gen_throughput", 123.4)]
        ) == []

    # -- queue-depth reconstruction -----------------------------------
    def _queued(self, seq, request="a", scope="r0"):
        return {
            "seq": seq, "time": float(seq), "event": "request_queued",
            "scope": scope, "request": request, "arrival": float(seq),
        }

    def _withdrawn(self, seq, request="a", scope="r0"):
        return {
            "seq": seq, "time": float(seq), "event": "request_withdrawn",
            "scope": scope, "request": request,
        }

    def test_queue_gauge_must_match_events(self):
        records = [
            self._queued(0),
            self._sample(1, "num_queue_reqs", 1.0),
            _admit(2, time=2.0),
            self._sample(3, "num_queue_reqs", 0.0),
        ]
        assert check_trace(records) == []
        records[3] = self._sample(3, "num_queue_reqs", 1.0)
        assert _invariants(records) == {"gauge-reconstruction"}

    def test_queue_gauge_skipped_without_queue_events(self):
        # Older traces never emitted request_queued; their samples
        # cannot be reconstructed and must not be flagged.
        assert check_trace(
            [self._sample(0, "num_queue_reqs", 5.0)]
        ) == []

    def test_preempted_victim_rejoins_queue(self):
        records = [
            self._queued(0),
            _admit(1, time=1.0),
            {"seq": 2, "time": 2.0, "event": "request_preempted",
             "scope": "r0", "request": "a"},
            self._sample(3, "num_queue_reqs", 1.0),
        ]
        assert check_trace(records) == []

    def test_double_queue_flagged(self):
        assert _invariants(
            [self._queued(0), self._queued(1)]
        ) == {"queue-ledger"}

    def test_withdraw_of_never_queued_flagged(self):
        assert _invariants([self._withdrawn(0)]) == {"queue-ledger"}

    def test_withdrawn_request_leaves_queue(self):
        records = [
            self._queued(0),
            self._withdrawn(1),
            self._sample(2, "num_queue_reqs", 0.0),
        ]
        assert check_trace(records) == []

    # -- token-usage reconstruction -----------------------------------
    def _span(self, seq, span_id, phase, start, end, parent=None,
              scope="r0", request="a", **extras):
        record = {
            "seq": seq, "time": end, "event": "span", "span": span_id,
            "phase": phase, "scope": scope, "request": request,
            "start": start, "end": end, **extras,
        }
        if parent is not None:
            record["parent"] = parent
        return record

    def test_token_usage_gauge_must_match_spans(self):
        records = [
            dict(_admit(0), tokens_reserved=12),
            self._span(1, 0, "prefill", 1.0, 2.0, chunk=12, produced=1),
            self._sample(2, "token_usage", 13.0),
            self._span(3, 1, "decode", 2.0, 3.0, produced=1),
            self._sample(4, "token_usage", 14.0),
        ]
        assert check_trace(records) == []
        records[4] = self._sample(4, "token_usage", 13.0)
        assert _invariants(records) == {"gauge-reconstruction"}

    def test_token_usage_skipped_without_spans(self):
        # Decode growth is invisible without spans: the checker must
        # not guess.
        assert check_trace(
            [dict(_admit(0), tokens_reserved=12),
             self._sample(1, "token_usage", 99.0)]
        ) == []

    def test_preempt_must_free_ledger_tokens(self):
        def trace(freed):
            return [
                dict(_admit(0), tokens_reserved=12),
                self._span(1, 0, "decode", 1.0, 2.0, produced=3),
                {"seq": 2, "time": 2.0, "event": "request_preempted",
                 "scope": "r0", "request": "a", "tokens_freed": freed},
            ]

        assert check_trace(trace(15)) == []
        assert _invariants(trace(14)) == {"token-conservation"}

    # -- span well-formedness -----------------------------------------
    def _root(self, seq, span_id=99, start=0.0, end=10.0, request="a",
              scope="r0", **extras):
        return self._span(seq, span_id, "request", start, end,
                          scope=scope, request=request, **extras)

    def test_clean_span_tree(self):
        records = [
            self._span(0, 0, "queue_wait", 0.0, 1.0),
            self._span(1, 1, "prefill", 1.0, 3.0, produced=1),
            self._span(2, 2, "decode", 3.0, 6.0, iterations=3),
            self._span(3, 3, "decode", 6.0, 10.0, iterations=4),
            self._root(4),
        ]
        assert check_trace(records) == []

    def test_backwards_span_flagged(self):
        assert _invariants(
            [self._span(0, 0, "decode", 2.0, 1.0)]
        ) == {"span-wellformed"}

    def test_span_escaping_root_flagged(self):
        records = [
            self._span(0, 0, "decode", 5.0, 12.0),
            self._root(1),
        ]
        assert _invariants(records) == {"span-nesting"}

    def test_exclusive_overlap_flagged(self):
        records = [
            self._span(0, 0, "prefill", 1.0, 3.0),
            self._span(1, 1, "decode", 2.0, 4.0),
        ]
        assert "span-overlap" in _invariants(records)

    def test_touching_spans_do_not_overlap(self):
        records = [
            self._span(0, 0, "prefill", 1.0, 3.0),
            self._span(1, 1, "decode", 3.0, 4.0),
        ]
        assert check_trace(records) == []

    def test_parent_linked_nesting_allowed(self):
        records = [
            self._span(0, 0, "drain_reroute", 1.0, 5.0),
            self._span(1, 1, "kv_migration", 2.0, 4.0, parent=0),
        ]
        assert check_trace(records) == []

    def test_child_escaping_parent_flagged(self):
        records = [
            self._span(0, 0, "drain_reroute", 1.0, 5.0),
            self._span(1, 1, "kv_migration", 2.0, 6.0, parent=0),
        ]
        assert "span-nesting" in _invariants(records)

    def test_unknown_parent_flagged(self):
        assert _invariants(
            [self._span(0, 1, "kv_migration", 2.0, 4.0, parent=7)]
        ) == {"span-wellformed"}

    def test_double_root_flagged(self):
        assert _invariants(
            [self._root(0, span_id=0), self._root(1, span_id=1)]
        ) == {"span-wellformed"}

    def test_phase_durations_cannot_exceed_e2e(self):
        # Overlapping phases necessarily overshoot the wall time, so
        # both the overlap and the accounting invariant fire.
        records = [
            self._span(0, 0, "queue_wait", 0.0, 6.0),
            self._span(1, 1, "decode", 4.0, 10.0),
            self._root(2),
        ]
        assert "span-accounting" in _invariants(records)

    # -- stream-clock monotonicity ------------------------------------
    def _queued_at(self, seq, time, request, scope="r0"):
        return {
            "seq": seq, "time": time, "event": "request_queued",
            "scope": scope, "request": request, "arrival": time,
        }

    def test_stream_clock_backwards_flagged(self):
        # The failure mode a joint-horizon bug produces: a component
        # swept forward, then dispatched an event in its own past.
        assert _invariants(
            [self._queued_at(0, 5.0, "a"), self._queued_at(1, 4.0, "b")]
        ) == {"stream-clock"}

    def test_stream_clock_is_per_stream(self):
        # Replica clocks legitimately interleave on the global axis.
        records = [
            self._queued_at(0, 5.0, "a", scope="r0"),
            self._queued_at(1, 3.0, "a", scope="r1"),
            self._queued_at(2, 6.0, "b", scope="r0"),
        ]
        assert check_trace(records) == []

    def test_span_end_behind_stream_clock_exempt(self):
        # A span is stamped at its end, which may precede records the
        # stream already emitted (overlapped work closed late).
        records = [
            _admit(0, time=5.0, arrival=0.0),
            self._span(1, 0, "prefill", 1.0, 2.0),
        ]
        assert check_trace(records) == []

    def test_migration_records_behind_stream_clock_exempt(self):
        # Migration records carry the serialized link's schedule
        # (pinned by kv-conservation) but are emitted when a
        # sweep-ahead harvests or absorbs the transfer, so a batched
        # harvest interleaves link instants out of order: here the
        # stream reaches 3.0, then a start at 1.0 and a landing at
        # 2.0 surface behind it.
        records = [
            {"seq": 0, "time": 3.0, "event": "migration_start",
             "cluster": "c0", "transfer": 1, "bytes": 32, "done": 4.0},
            {"seq": 1, "time": 1.0, "event": "migration_start",
             "cluster": "c0", "transfer": 0, "bytes": 64, "done": 2.0},
            {"seq": 2, "time": 2.0, "event": "migration_land",
             "cluster": "c0", "transfer": 0, "bytes": 64},
            {"seq": 3, "time": 4.0, "event": "migration_land",
             "cluster": "c0", "transfer": 1, "bytes": 32},
        ]
        assert check_trace(records) == []

    def test_link_gauge_behind_stream_clock_exempt(self):
        # migration_link_* gauges are stamped at link-schedule
        # instants alongside the migration records they accompany;
        # other gauges in the same stream still advance the clock.
        records = [
            self._queued_at(0, 5.0, "a", scope="c0"),
            {"seq": 1, "time": 4.0, "event": "sample", "scope": "c0",
             "metric": "migration_link_backlog_seconds", "value": 0.5},
        ]
        assert check_trace(records) == []
        records = [
            self._queued_at(0, 5.0, "a", scope="c0"),
            {"seq": 1, "time": 4.0, "event": "sample", "scope": "c0",
             "metric": "num_queue_reqs", "value": 1.0},
        ]
        assert _invariants(records) == {"stream-clock"}


class TestCheckerApi:
    def test_violation_str(self):
        violation = TraceViolation("monotone-clock", "went backwards", 7)
        assert str(violation) == "[monotone-clock] seq=7: went backwards"

    def test_violations_sorted_by_seq(self):
        records = [_finish(5), _finish(2)]
        violations = check_trace(records)
        assert [v.seq for v in violations] == sorted(v.seq for v in violations)

    def test_assert_clean_raises_with_listing(self):
        with pytest.raises(AssertionError, match="request-lifecycle"):
            assert_clean([_finish(0)])
        assert_clean([_admit(0), _finish(1)])  # no raise

    def test_check_jsonl(self, tmp_path):
        import json

        path = tmp_path / "trace.jsonl"
        with open(path, "w") as handle:
            for record in (_admit(0), _finish(1, generated=1)):
                handle.write(json.dumps(record) + "\n")
        violations = check_jsonl(str(path))
        assert [v.invariant for v in violations] == ["token-conservation"]


# ----------------------------------------------------------------------
# The catalogue gate
# ----------------------------------------------------------------------
#: Every catalogue entry at reduced scale (mirrors the fast-forward
#: sweep's reductions). Keys must cover ``EXPERIMENTS`` — the coverage
#: test below fails when a new experiment lands without a trace gate.
TRACE_SWEEP = {
    "fig02": lambda: fig02_prefill_kernel_overhead.run(),
    "fig03": lambda: fig03_block_size_sensitivity.run(),
    "fig04": lambda: fig04_alloc_bandwidth_demand.run(),
    "fig07": lambda: fig07_prefill_throughput.run(),
    "fig08": lambda: fig08_decode_throughput.run(
        models=[(YI_6B, 1)], batches=(1, 16), decode_iterations=60
    ),
    "fig09": lambda: fig09_offline_throughput.run(
        models=[(YI_6B, 1)], request_count=12
    ),
    "fig10": lambda: fig10_online_latency.run(
        grid=[(YI_6B, (2.0,))],
        systems=("FA2_Paged", "FA2_vAttention"),
        request_count=40,
    ),
    "fig11": lambda: fig11_fa3_portability.run(
        models=[(YI_6B, 1)], request_count=10
    ),
    "fig12": lambda: fig12_overlap_ablation.run(decode_iterations=80),
    "fig13": lambda: fig13_deferred_reclamation.run(),
    "fig14": lambda: fig14_page_size_effect.run(),
    "fig15": lambda: fig15_max_batch_size.run(
        models=[(YI_6B, 1)], page_group_sizes=(2 * MB,), request_count=24
    ),
    "tab03": lambda: tab03_vmm_latency.run(),
    "tab06": lambda: tab06_prefill_times.run(),
    "tab07": lambda: tab07_decode_kernel_latency.run(),
    "tab08": lambda: tab08_block_sizes.run(),
    "tab09": lambda: tab09_alloc_bandwidth.run(),
    "tab10": lambda: tab10_tensor_slicing.run(),
    "ext-sharing": lambda: ext_prefix_sharing.run(),
    "ext-prefix-cache": lambda: ext_prefix_cache.run(sharing_factors=(4,)),
    "ext-sched-policy": lambda: ext_sched_policy.run(count=40, qps=6.0),
    "ext-swap": lambda: ext_swap_policy.run(prompts=(8_192,)),
    # Exercises tier_transfer out/in pairing (tier-conservation).
    "ext-kv-tiering": lambda: ext_kv_tiering.run(prompts=(8_192,)),
    "ext-uvm": lambda: ext_uvm_limitations.run(request_count=60, qps=6.0),
    "ext-chunked": lambda: ext_chunked_prefill.run(),
    "ext-large-models": lambda: ext_large_models.run(),
    "ext-cluster-router": lambda: (
        ext_cluster_router.run(
            replica_counts=(2,),
            policies=("round_robin", "cache_aware"),
            sharing_factors=(4,),
            count=24,
            qps=8.0,
        ),
        # The disaggregated leg exercises migration start/land pairing.
        ext_cluster_router.run_disaggregated(
            interconnects=("nvlink",), count=24, qps=8.0
        ),
    ),
    # Elastic fleets exercise the full replica lifecycle (provision ->
    # warm -> serve -> drain -> retire) and drain re-routing.
    "ext-autoscale": lambda: ext_autoscale.run(
        fleets=("sla", "queue_depth"), count=96, qps=4.0
    ),
}

#: Entries that drive a serving engine or cluster: their traces must be
#: non-trivial (the gate would otherwise pass vacuously).
ENGINE_DRIVEN = {
    "fig08", "fig09", "fig10", "fig11", "fig12", "fig15",
    "ext-prefix-cache", "ext-sched-policy", "ext-swap", "ext-kv-tiering",
    "ext-uvm", "ext-chunked", "ext-cluster-router", "ext-autoscale",
}


class TestCatalogueGate:
    def test_covers_catalogue(self):
        assert set(TRACE_SWEEP) >= set(EXPERIMENTS), (
            "new catalogue entries need a TRACE_SWEEP gate: "
            f"{sorted(set(EXPERIMENTS) - set(TRACE_SWEEP))}"
        )

    @pytest.mark.parametrize("name", sorted(TRACE_SWEEP))
    def test_trace_invariants_hold(self, name):
        with enabled(TelemetryRegistry(record_spans=True)) as registry:
            TRACE_SWEEP[name]()
        records = registry.trace_records()
        if name in ENGINE_DRIVEN:
            assert any(
                record["event"] == "request_finished" for record in records
            ), "engine-driven experiment produced no lifecycle events"
        assert_clean(records)
        # Attribution closure: every attributed request's phase buckets
        # must sum to its measured wall time (and, clipped at the first
        # token, to its TTFT).
        report = attribution.build(records)
        if name in ENGINE_DRIVEN:
            assert report.requests, "spans-on run attributed no requests"
        assert report.closure_violations() == []
        for row in report.requests:
            if row.ttft_buckets is None:
                continue
            ttft_sum = math.fsum(row.ttft_buckets.values())
            assert math.isclose(
                ttft_sum, row.ttft, rel_tol=1e-9, abs_tol=1e-9
            ), f"{row.request}: ttft buckets {ttft_sum} != {row.ttft}"


# ----------------------------------------------------------------------
# The cluster fast-loop gate
# ----------------------------------------------------------------------
class TestClusterFastLoopGate:
    """The joint-horizon fleet loop replays clean with spans on.

    The catalogue gate runs the cluster drivers under the module
    default; this class pins the fast loop explicitly: an elastic
    fleet runs with ``fast_forward`` forced on, its merged trace
    replays with zero violations (including the stream-clock
    invariant the analytic jumps would break first), the replayable
    gauges are actually present — so gauge reconstruction is exercised
    rather than vacuously skipped — and attribution closes.
    """

    @pytest.fixture(scope="class")
    def records(self):
        import repro.serving.engine as engine_module

        previous = engine_module.DEFAULT_FAST_FORWARD
        engine_module.DEFAULT_FAST_FORWARD = True
        try:
            with enabled(TelemetryRegistry(record_spans=True)) as registry:
                ext_autoscale.serve("queue_depth", count=96, qps=4.0)
            return registry.trace_records()
        finally:
            engine_module.DEFAULT_FAST_FORWARD = previous

    def test_replays_clean(self, records):
        assert_clean(records)

    def test_fast_loop_engaged(self, records):
        # Stretch spans must actually collapse iterations — a gate
        # over a run the fast path never touched proves nothing.
        decode_spans = [
            record for record in records
            if record["event"] == "span" and record["phase"] == "decode"
        ]
        assert decode_spans
        assert any(
            record.get("iterations", 1) > 1 for record in decode_spans
        )

    def test_replayable_gauges_sampled(self, records):
        sampled = {
            record["metric"] for record in records
            if record["event"] == "sample"
        }
        assert {
            "num_running_reqs", "num_queue_reqs", "token_usage",
        } <= sampled
        assert any(
            record["event"] == "request_queued" for record in records
        ), "queue reconstruction would be skipped without queue events"

    def test_attribution_closes(self, records):
        report = attribution.build(records)
        assert report.requests
        assert report.closure_violations() == []
