"""Simulated clock behaviour."""

import pytest

from repro.gpu.clock import SimClock


class TestAdvance:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(start=5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_advance_returns_new_time(self):
        clock = SimClock()
        assert clock.advance(3.0) == pytest.approx(3.0)

    def test_advance_rejects_negative(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_zero_advance_is_noop(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now == 0.0


class TestAdvanceTo:
    def test_moves_forward(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_past_timestamp_is_noop(self):
        clock = SimClock(start=10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0


class TestObservers:
    def test_observer_sees_interval(self):
        clock = SimClock()
        seen = []
        clock.subscribe(lambda old, new: seen.append((old, new)))
        clock.advance(2.0)
        assert seen == [(0.0, 2.0)]

    def test_unsubscribe(self):
        clock = SimClock()
        seen = []
        observer = lambda old, new: seen.append(new)  # noqa: E731
        clock.subscribe(observer)
        clock.advance(1.0)
        clock.unsubscribe(observer)
        clock.advance(1.0)
        assert seen == [1.0]

    def test_multiple_observers(self):
        clock = SimClock()
        first, second = [], []
        clock.subscribe(lambda o, n: first.append(n))
        clock.subscribe(lambda o, n: second.append(n))
        clock.advance(1.0)
        assert first == [1.0] and second == [1.0]
