"""Request lifecycle state machine."""

import pytest

from repro.errors import ConfigError, SchedulingError
from repro.serving.request import Request, RequestState


def make_request(**kwargs) -> Request:
    defaults = dict(request_id="r1", prompt_len=100, max_new_tokens=10)
    defaults.update(kwargs)
    return Request(**defaults)


class TestConstruction:
    def test_defaults(self):
        request = make_request()
        assert request.state is RequestState.QUEUED
        assert request.context_len == 100
        assert request.total_len == 110
        assert not request.is_finished

    def test_rejects_empty_prompt(self):
        with pytest.raises(ConfigError):
            make_request(prompt_len=0)

    def test_rejects_zero_decode(self):
        with pytest.raises(ConfigError):
            make_request(max_new_tokens=0)


class TestPrefill:
    def test_prefill_produces_first_token(self):
        request = make_request()
        request.state = RequestState.RUNNING
        request.record_prefill(now=2.0)
        assert request.prefill_done
        assert request.generated == 1
        assert request.first_token_time == 2.0
        assert request.ttft == pytest.approx(2.0)

    def test_prefill_requires_running(self):
        with pytest.raises(SchedulingError):
            make_request().record_prefill(now=1.0)

    def test_needs_prefill_flag(self):
        request = make_request()
        assert not request.needs_prefill  # queued
        request.state = RequestState.RUNNING
        assert request.needs_prefill
        request.record_prefill(now=0.0)
        assert not request.needs_prefill


class TestDecode:
    def test_decode_counts_tokens(self):
        request = make_request()
        request.state = RequestState.RUNNING
        request.record_prefill(now=0.0)
        request.record_decode_token(now=1.0)
        assert request.generated == 2
        assert request.context_len == 102

    def test_decode_before_prefill_rejected(self):
        request = make_request()
        request.state = RequestState.RUNNING
        with pytest.raises(SchedulingError):
            request.record_decode_token(now=0.0)


class TestPreemption:
    def test_preempt_recompute_semantics(self):
        request = make_request(prompt_len=100, max_new_tokens=10)
        request.state = RequestState.RUNNING
        request.record_prefill(now=0.0)
        request.record_decode_token(now=1.0)  # generated=2, ctx=102
        request.preempt()
        # vLLM recompute: generated tokens fold into the prompt.
        assert request.state is RequestState.PREEMPTED
        assert request.prompt_len == 102
        assert request.max_new_tokens == 8
        assert request.generated == 0
        assert not request.prefill_done
        assert request.total_len == 110  # invariant preserved
        assert request.preemptions == 1

    def test_preempt_requires_running(self):
        with pytest.raises(SchedulingError):
            make_request().preempt()


class TestCompletion:
    def test_finish_records_latency(self):
        request = make_request(arrival_time=5.0)
        request.state = RequestState.RUNNING
        request.record_prefill(now=7.0)
        request.finish(now=12.0)
        assert request.is_finished
        assert request.e2e_latency == pytest.approx(7.0)
        assert request.ttft == pytest.approx(2.0)

    def test_latency_before_finish_rejected(self):
        with pytest.raises(SchedulingError):
            make_request().e2e_latency

    def test_ttft_before_first_token_rejected(self):
        with pytest.raises(SchedulingError):
            make_request().ttft
