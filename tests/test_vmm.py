"""CUDA VMM API surface: semantics and Table 3 latency accounting."""

import pytest

from repro.errors import ConfigError, MappingError
from repro.gpu.clock import SimClock
from repro.gpu.phys import PhysicalMemoryPool
from repro.gpu.virtual import VirtualAddressSpace
from repro.gpu.vmm import (
    API_LATENCY,
    CudaVmm,
    api_latency,
    map_cost,
    unmap_cost,
)
from repro.units import GB, KB, MB, us


@pytest.fixture
def vmm() -> CudaVmm:
    pool = PhysicalMemoryPool(capacity=1 * GB)
    space = VirtualAddressSpace(size=64 * GB)
    return CudaVmm(pool, space, SimClock())


class TestLatencyTable:
    def test_table3_map_plus_set_access_is_40us(self):
        # The paper's S6.1 example: one cuMemMap + cuMemSetAccess pair
        # costs ~40 microseconds.
        total = api_latency("map", 2 * MB) + api_latency("set_access", 2 * MB)
        assert total == pytest.approx(us(40))

    def test_create_latencies_match_table3(self):
        assert api_latency("create", 64 * KB) == pytest.approx(us(1.7))
        assert api_latency("create", 2 * MB) == pytest.approx(us(29))

    def test_small_pages_have_no_separate_set_access(self):
        with pytest.raises(ConfigError):
            api_latency("set_access", 64 * KB)

    def test_unknown_api_rejected(self):
        with pytest.raises(ConfigError):
            api_latency("bogus", 2 * MB)

    def test_map_cost_small_page(self):
        assert map_cost(64 * KB) == pytest.approx(us(1.7 + 8))

    def test_map_cost_2mb_includes_set_access(self):
        assert map_cost(2 * MB) == pytest.approx(us(29 + 2 + 38))

    def test_unmap_cost_2mb_includes_unmap(self):
        assert unmap_cost(2 * MB) == pytest.approx(us(34 + 23))

    def test_every_api_has_all_four_sizes(self):
        for api, by_size in API_LATENCY.items():
            assert set(by_size) == {64 * KB, 128 * KB, 256 * KB, 2 * MB}, api


class TestApiSemantics:
    def test_reserve_create_map_flow(self, vmm):
        reservation = vmm.mem_address_reserve(8 * MB)
        handle = vmm.mem_create()
        vmm.mem_map(reservation, 0, handle)
        vmm.mem_set_access(reservation, 0, 2 * MB)
        assert reservation.is_range_backed(0, 2 * MB)

    def test_clock_charged_per_call(self, vmm):
        start = vmm._clock.now
        reservation = vmm.mem_address_reserve(8 * MB)
        handle = vmm.mem_create()
        vmm.mem_map(reservation, 0, handle)
        vmm.mem_set_access(reservation, 0, 2 * MB)
        elapsed = vmm._clock.now - start
        assert elapsed == pytest.approx(us(2 + 29 + 2 + 38))

    def test_granularity_enforced(self, vmm):
        with pytest.raises(ConfigError):
            vmm.mem_address_reserve(1 * MB)
        with pytest.raises(ConfigError):
            vmm.mem_create(64 * KB)

    def test_set_access_requires_mapping(self, vmm):
        reservation = vmm.mem_address_reserve(8 * MB)
        with pytest.raises(MappingError):
            vmm.mem_set_access(reservation, 0, 2 * MB)

    def test_unmap_release_frees_pool(self, vmm):
        reservation = vmm.mem_address_reserve(8 * MB)
        handle = vmm.mem_create()
        vmm.mem_map(reservation, 0, handle)
        returned = vmm.mem_unmap(reservation, 0)
        vmm.mem_release(returned)
        assert vmm._pool.committed == 0

    def test_address_free(self, vmm):
        reservation = vmm.mem_address_reserve(8 * MB)
        vmm.mem_address_free(reservation)
        assert vmm._va.reserved_bytes == 0

    def test_stats_counters(self, vmm):
        reservation = vmm.mem_address_reserve(8 * MB)
        handle = vmm.mem_create()
        vmm.mem_map(reservation, 0, handle)
        assert vmm.stats.reserve == 1
        assert vmm.stats.create == 1
        assert vmm.stats.map == 1
        assert vmm.stats.total_calls == 3


class TestChargeRedirection:
    def test_charge_to_sink_does_not_advance_clock(self, vmm):
        bucket = []
        with vmm.charge_to(bucket.append):
            vmm.mem_create()
        assert vmm._clock.now == 0.0
        assert bucket == [pytest.approx(us(29))]

    def test_sink_restored_after_block(self, vmm):
        with vmm.charge_to(lambda s: None):
            pass
        vmm.mem_create()
        assert vmm._clock.now == pytest.approx(us(29))

    def test_sink_restored_on_exception(self, vmm):
        with pytest.raises(RuntimeError):
            with vmm.charge_to(lambda s: None):
                raise RuntimeError("boom")
        vmm.mem_create()
        assert vmm._clock.now == pytest.approx(us(29))
