"""Roofline cost model: scaling behaviour and interpolation."""

import pytest

from repro.errors import KernelError
from repro.gpu.spec import A100, H100
from repro.kernels.costmodel import (
    EFF_ATTN_PREFILL,
    EFF_DECODE_KV,
    Roofline,
    attention_decode_time,
    attention_prefill_time,
    interp_factor,
    linear_decode_time,
    linear_prefill_time,
)
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B


@pytest.fixture
def shard() -> ShardedModel:
    return ShardedModel(YI_6B, 1)


class TestRoofline:
    def test_compute_time(self):
        roofline = Roofline(A100)
        assert roofline.compute_time(312e12, 1.0) == pytest.approx(1.0)
        assert roofline.compute_time(312e12, 0.5) == pytest.approx(2.0)

    def test_memory_time(self):
        roofline = Roofline(A100)
        assert roofline.memory_time(2.039e12, 1.0) == pytest.approx(1.0)

    def test_h100_faster(self, shard):
        assert attention_prefill_time(
            shard, H100, 16_384, EFF_ATTN_PREFILL
        ) < attention_prefill_time(shard, A100, 16_384, EFF_ATTN_PREFILL)

    def test_negative_inputs_rejected(self):
        roofline = Roofline(A100)
        with pytest.raises(KernelError):
            roofline.compute_time(-1, 0.5)
        with pytest.raises(KernelError):
            roofline.memory_time(-1, 0.5)


class TestLinearOps:
    def test_prefill_scales_with_tokens(self, shard):
        one = linear_prefill_time(shard, A100, 1_000)
        two = linear_prefill_time(shard, A100, 2_000)
        assert two == pytest.approx(2 * one)

    def test_decode_has_memory_floor(self, shard):
        # Batch 1 decode is dominated by streaming the weights: doubling
        # the batch must NOT double the latency.
        one = linear_decode_time(shard, A100, 1)
        two = linear_decode_time(shard, A100, 2)
        assert two < 1.1 * one

    def test_decode_grows_at_large_batch(self, shard):
        small = linear_decode_time(shard, A100, 64)
        large = linear_decode_time(shard, A100, 256)
        assert large > 1.5 * small

    def test_decode_rejects_empty_batch(self, shard):
        with pytest.raises(KernelError):
            linear_decode_time(shard, A100, 0)


class TestAttentionPrimitives:
    def test_prefill_quadratic(self, shard):
        small = attention_prefill_time(shard, A100, 8_192, EFF_ATTN_PREFILL)
        large = attention_prefill_time(shard, A100, 16_384, EFF_ATTN_PREFILL)
        assert large / small == pytest.approx(4.0, rel=0.01)

    def test_decode_proportional_to_total_tokens(self, shard):
        # S7.2: decode kernel latency tracks total tokens in the batch.
        a = attention_decode_time(shard, A100, [16_384] * 4, EFF_DECODE_KV)
        b = attention_decode_time(shard, A100, [8_192] * 8, EFF_DECODE_KV)
        assert a == pytest.approx(b)

    def test_decode_rejects_negative_context(self, shard):
        with pytest.raises(KernelError):
            attention_decode_time(shard, A100, [-1], EFF_DECODE_KV)

    def test_prefill_rejects_negative(self, shard):
        with pytest.raises(KernelError):
            attention_prefill_time(shard, A100, -1, EFF_ATTN_PREFILL)


class TestInterpolation:
    TABLE = ((1_024, 1.0), (2_048, 2.0), (8_192, 4.0))

    def test_exact_points(self):
        assert interp_factor(self.TABLE, 1_024) == 1.0
        assert interp_factor(self.TABLE, 8_192) == 4.0

    def test_log_midpoint(self):
        # Halfway between 2^10 and 2^11 in log space.
        mid = interp_factor(self.TABLE, 1_448)
        assert 1.45 < mid < 1.55

    def test_clamps_outside_range(self):
        assert interp_factor(self.TABLE, 10) == 1.0
        assert interp_factor(self.TABLE, 1_000_000) == 4.0

    def test_rejects_empty(self):
        with pytest.raises(KernelError):
            interp_factor((), 100)

    def test_rejects_unsorted(self):
        with pytest.raises(KernelError):
            interp_factor(((2, 1.0), (1, 2.0)), 1)

    def test_rejects_nonpositive_x(self):
        with pytest.raises(KernelError):
            interp_factor(self.TABLE, 0)
