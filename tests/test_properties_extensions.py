"""Property-based tests for the extension subsystems."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.background import BackgroundWorker
from repro.core.config import VAttentionConfig
from repro.core.vattention import VAttention
from repro.gpu.device import Device
from repro.gpu.spec import A100
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.serving.swap import HostSwapSpace
from repro.units import GB, MB

RELAXED = settings(
    deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=25
)


class TestBackgroundWorkerProperties:
    @RELAXED
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["submit_c", "submit_o", "run", "flush"]),
                st.floats(0, 0.01),
            ),
            max_size=60,
        )
    )
    def test_conservation_of_work(self, ops):
        worker = BackgroundWorker()
        for op, amount in ops:
            if op == "submit_c":
                worker.submit(amount, critical=True)
            elif op == "submit_o":
                worker.submit(amount, critical=False)
            elif op == "run":
                worker.run_for(amount)
            else:
                worker.flush_critical()
            # Submitted work is always accounted somewhere.
            assert worker.submitted_seconds == pytest.approx(
                worker.overlapped_seconds
                + worker.spilled_seconds
                + worker.pending_seconds
            )
            assert worker.critical_pending >= 0
            assert worker.opportunistic_pending >= 0
            assert 0.0 <= worker.hidden_fraction <= 1.0


class TestSwapSpaceProperties:
    @RELAXED
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 9), st.integers(1, 64 * MB)),
            min_size=1,
            max_size=50,
        )
    )
    def test_capacity_never_negative(self, ops):
        space = HostSwapSpace(capacity=256 * MB)
        resident = set()
        for key, size in ops:
            rid = f"r{key}"
            if rid in resident:
                space.swap_in(rid)
                resident.discard(rid)
            elif space.can_swap_out(size):
                space.swap_out(rid, size)
                resident.add(rid)
            assert 0 <= space.used <= space.capacity
            assert space.available == space.capacity - space.used
        # Bytes out >= bytes in (in-flight requests still resident).
        assert space.stats.bytes_out >= space.stats.bytes_in


class TestSharingProperties:
    @RELAXED
    @given(
        prefix=st.integers(1, 16_384),
        followers=st.integers(1, 4),
    )
    def test_sharing_never_leaks_rows(self, prefix, followers):
        device = Device(A100, reserved_bytes=50 * GB)
        config = VAttentionConfig(
            shard=ShardedModel(YI_6B, 1),
            max_batch_size=followers + 1,
            page_group_size=2 * MB,
            eager_allocation=False,
            overlap_allocation=False,
        )
        manager = VAttention(device, config)
        seq = [0] * (followers + 1)
        leader = manager.alloc_reqid()
        seq[leader] = prefix
        manager.step(seq)
        for _ in range(followers):
            follower = manager.alloc_reqid()
            result = manager.share_prefix(leader, follower, prefix)
            assert result.shared_rows + (1 if result.copied_tokens else 0) == (
                manager.slots[follower].mapped_rows
            )
            seq[follower] = prefix
            manager.step(seq)
        # Physical rows: leader's rows + one CoW tail row per follower.
        leader_rows = config.rows_for_context(prefix)
        tail = 1 if prefix % config.tokens_per_page_group else 0
        assert manager.physical_rows_in_use == leader_rows + followers * tail
        # Free everyone in arbitrary order; everything returns.
        manager.free_reqid(leader)
        for req_id in range(followers + 1):
            if manager.slots[req_id].active:
                manager.free_reqid(req_id)
        manager.shutdown()
        assert device.pool.committed == 0

    @RELAXED
    @given(prefix=st.integers(2_048, 10_000))
    def test_saved_bytes_equals_refcount_excess(self, prefix):
        device = Device(A100, reserved_bytes=50 * GB)
        config = VAttentionConfig(
            shard=ShardedModel(YI_6B, 1),
            max_batch_size=3,
            page_group_size=2 * MB,
            eager_allocation=False,
        )
        manager = VAttention(device, config)
        seq = [0, 0, 0]
        leader = manager.alloc_reqid()
        seq[leader] = prefix
        manager.step(seq)
        a = manager.alloc_reqid()
        b_result = manager.share_prefix(leader, a, prefix)
        b = manager.alloc_reqid()
        c_result = manager.share_prefix(leader, b, prefix)
        assert manager.dedup_saved_bytes == (
            b_result.saved_bytes + c_result.saved_bytes
        )
