"""Unit coverage of the event-driven simulation core (repro.sim)."""

import math

import pytest

from repro.gpu.clock import SimClock
from repro.gpu.spec import A100
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.scheduling import make_scheduler_policy
from repro.scheduling.base import SchedulerPolicy, SchedulingView
from repro.serving.engine import EngineConfig, LLMEngine
from repro.serving.request import Request, RequestState
from repro.sim.events import EventKind, EventQueue
from repro.workloads.traces import fixed_trace


def make_engine(**overrides):
    defaults = dict(
        shard=ShardedModel(YI_6B, 1),
        gpu=A100,
        memory_backend="vattention",
        max_batch_size=8,
    )
    defaults.update(overrides)
    return LLMEngine(EngineConfig(**defaults))


def view():
    return SchedulingView(
        now=0.0,
        max_batch_size=8,
        prefill_chunk_size=None,
        cached_prefix_tokens=lambda r: 0,
    )


def running(rid, prefill_done=True):
    request = Request(request_id=rid, prompt_len=100, max_new_tokens=10)
    request.state = RequestState.RUNNING
    if prefill_done:
        request.record_prefill(now=0.0)
    return request


# ----------------------------------------------------------------------
class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, EventKind.ARRIVAL, "c")
        queue.push(1.0, EventKind.MIGRATION, "a")
        queue.push(2.0, EventKind.ARRIVAL, "b")
        assert [queue.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_arrivals_dispatch_before_migrations_at_ties(self):
        queue = EventQueue()
        queue.push(5.0, EventKind.MIGRATION, "m")
        queue.push(5.0, EventKind.ARRIVAL, "a")
        assert queue.pop().payload == "a"
        assert queue.pop().payload == "m"

    def test_equal_events_keep_insertion_order(self):
        queue = EventQueue()
        for tag in ("first", "second", "third"):
            queue.push(1.0, EventKind.ARRIVAL, tag)
        assert [e.payload for e in queue.pop_due(1.0)] == [
            "first", "second", "third",
        ]

    def test_pop_due_and_peek(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.ARRIVAL, 1)
        queue.push(2.0, EventKind.ARRIVAL, 2)
        queue.push(3.0, EventKind.ARRIVAL, 3)
        assert queue.peek().time == 1.0
        assert [e.payload for e in queue.pop_due(2.0)] == [1, 2]
        assert len(queue) == 1

    def test_next_time_by_kind(self):
        queue = EventQueue()
        assert queue.next_time() == math.inf
        queue.push(4.0, EventKind.MIGRATION)
        queue.push(6.0, EventKind.ARRIVAL)
        assert queue.next_time() == 4.0
        assert queue.next_time(EventKind.ARRIVAL) == 6.0
        assert queue.next_time(EventKind.MIGRATION) == 4.0


# ----------------------------------------------------------------------
class TestClockJump:
    def test_jump_lands_exactly(self):
        clock = SimClock()
        clock.advance(1.0)
        clock.jump_to(2.5)
        assert clock.now == 2.5

    def test_jump_backwards_rejected(self):
        clock = SimClock(start=5.0)
        with pytest.raises(ValueError):
            clock.jump_to(4.0)

    def test_observers_see_one_notification(self):
        clock = SimClock()
        seen = []
        clock.subscribe(lambda old, new: seen.append((old, new)))
        clock.jump_to(3.0)
        assert seen == [(0.0, 3.0)]


# ----------------------------------------------------------------------
class TestStableDecodeHorizon:
    @pytest.mark.parametrize("name", ["fcfs", "sla", "hybrid"])
    def test_unbounded_when_all_decoding(self, name):
        policy = make_scheduler_policy(name)
        batch = [running("a"), running("b")]
        assert policy.stable_decode_horizon(batch, view()) == math.inf

    @pytest.mark.parametrize("name", ["fcfs", "sla", "hybrid"])
    def test_zero_with_pending_prefill(self, name):
        policy = make_scheduler_policy(name)
        batch = [running("a"), running("b", prefill_done=False)]
        assert policy.stable_decode_horizon(batch, view()) == 0

    def test_base_default_is_conservative(self):
        class Custom(SchedulerPolicy):
            name = "custom"

            def next_admission(self, waiting, v):
                return waiting[0] if waiting else None

            def plan_iteration(self, batch, v):
                raise AssertionError("unused")

        assert Custom().stable_decode_horizon([running("a")], view()) == 0


# ----------------------------------------------------------------------
class TestFastForwardedRecords:
    def test_stretch_emits_one_aggregated_record(self):
        engine = make_engine()
        engine.submit(fixed_trace(count=2, prompt_len=1_000, max_new_tokens=30))
        report = engine.run()
        decode = report.metrics.of_phase("decode")
        assert len(decode) == 1
        (stretch,) = decode
        assert stretch.iterations == 29  # prefill produced token #1
        assert stretch.tokens == 29 * 2
        assert stretch.batch_size == 2
        assert stretch.alloc_sync == 0.0
        assert report.metrics.iteration_count("decode") == 29

    def test_fast_forward_off_keeps_per_iteration_records(self):
        engine = make_engine(fast_forward=False)
        engine.submit(fixed_trace(count=2, prompt_len=1_000, max_new_tokens=30))
        report = engine.run()
        decode = report.metrics.of_phase("decode")
        assert len(decode) == 29
        assert all(r.iterations == 1 for r in decode)

    def test_stretch_ends_at_earliest_completion(self):
        engine = make_engine()
        short = fixed_trace(count=1, prompt_len=1_000, max_new_tokens=10,
                            name="short")
        long = fixed_trace(count=1, prompt_len=1_000, max_new_tokens=40,
                           name="long")
        engine.submit(short + long)
        report = engine.run()
        decode = report.metrics.of_phase("decode")
        # First stretch runs at batch 2 until the short request's final
        # token, later stretches at batch 1; batch size never mixes
        # within a record.
        assert decode[0].batch_size == 2
        assert decode[0].iterations == 9
        assert all(r.batch_size == 1 for r in decode[1:])
        assert report.metrics.iteration_count("decode") == 9 + 30

    def test_custom_policy_disables_fast_path(self):
        # A policy without a stable_decode_horizon override must never
        # be fast-forwarded, even on a steady decode batch.
        from repro.scheduling import SCHEDULER_POLICIES
        from repro.scheduling.fcfs import FcfsPolicy

        class Opaque(FcfsPolicy):
            name = "opaque"

            def stable_decode_horizon(self, batch, v):
                return SchedulerPolicy.stable_decode_horizon(self, batch, v)

        engine = make_engine()
        engine.scheduler = Opaque()
        assert "opaque" not in SCHEDULER_POLICIES
        engine.submit(fixed_trace(count=1, prompt_len=1_000, max_new_tokens=16))
        report = engine.run()
        assert all(r.iterations == 1 for r in report.metrics.iterations)

    def test_uvm_stretch_breaks_at_page_faults(self):
        # UVM faults are synchronous: iterations that materialize pages
        # must run on the per-iteration path (alloc latency on the
        # clock), with fast stretches only in between.
        engine = make_engine(memory_backend="uvm", max_batch_size=4)
        engine.submit(fixed_trace(count=1, prompt_len=4_000, max_new_tokens=3_000))
        report = engine.run()
        decode = report.metrics.of_phase("decode")
        stretches = [r for r in decode if r.iterations > 1]
        singles = [r for r in decode if r.iterations == 1]
        assert stretches, "steady spans should aggregate"
        assert singles, "fault iterations must stay individual"
        assert all(r.alloc_sync == 0.0 for r in stretches)
