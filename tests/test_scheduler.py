"""FCFS scheduler: admission, order preservation, preemption."""

import pytest

from repro.errors import SchedulingError
from repro.serving.request import Request, RequestState
from repro.serving.scheduler import FcfsScheduler, peak_batch_size


def make_request(rid: str, prompt: int = 100) -> Request:
    return Request(request_id=rid, prompt_len=prompt, max_new_tokens=10)


class TestAdmission:
    def test_admits_in_arrival_order(self):
        scheduler = FcfsScheduler(max_batch_size=4, can_admit=lambda r: True)
        for rid in ("a", "b", "c"):
            scheduler.enqueue(make_request(rid))
        admitted = scheduler.admit_ready()
        assert [r.request_id for r in admitted] == ["a", "b", "c"]
        assert all(r.state is RequestState.RUNNING for r in admitted)

    def test_respects_batch_cap(self):
        scheduler = FcfsScheduler(max_batch_size=2, can_admit=lambda r: True)
        for rid in ("a", "b", "c"):
            scheduler.enqueue(make_request(rid))
        assert len(scheduler.admit_ready()) == 2
        assert len(scheduler.waiting) == 1

    def test_strict_fcfs_head_of_line_blocking(self):
        # A too-big head request blocks smaller ones behind it (no
        # reordering — matches the paper's FCFS setup).
        scheduler = FcfsScheduler(
            max_batch_size=4, can_admit=lambda r: r.prompt_len < 1000
        )
        scheduler.enqueue(make_request("big", prompt=5000))
        scheduler.enqueue(make_request("small", prompt=10))
        assert scheduler.admit_ready() == []

    def test_enqueue_requires_queued_state(self):
        scheduler = FcfsScheduler(max_batch_size=4, can_admit=lambda r: True)
        request = make_request("a")
        request.state = RequestState.RUNNING
        with pytest.raises(SchedulingError):
            scheduler.enqueue(request)


class TestRetireAndPreempt:
    def test_retire_removes(self):
        scheduler = FcfsScheduler(max_batch_size=4, can_admit=lambda r: True)
        scheduler.enqueue(make_request("a"))
        (request,) = scheduler.admit_ready()
        scheduler.retire(request)
        assert scheduler.batch_size == 0

    def test_retire_unknown_rejected(self):
        scheduler = FcfsScheduler(max_batch_size=4, can_admit=lambda r: True)
        with pytest.raises(SchedulingError):
            scheduler.retire(make_request("ghost"))

    def test_preempt_newest(self):
        scheduler = FcfsScheduler(max_batch_size=4, can_admit=lambda r: True)
        for rid in ("a", "b"):
            scheduler.enqueue(make_request(rid))
        scheduler.admit_ready()
        victim = scheduler.preempt_newest()
        assert victim.request_id == "b"
        assert scheduler.batch_size == 1

    def test_preempt_newest_updates_victim_state(self):
        # Regression: the reusable scheduler used to leave the victim
        # RUNNING while the engine's inline path marks it preempted.
        scheduler = FcfsScheduler(max_batch_size=4, can_admit=lambda r: True)
        scheduler.enqueue(make_request("a", prompt=100))
        (request,) = scheduler.admit_ready()
        request.prefill_done = True
        request.generated = 4
        victim = scheduler.preempt_newest()
        assert victim.state is RequestState.PREEMPTED
        assert victim.preemptions == 1
        # Recompute semantics, like the engine: generated tokens fold
        # into the prompt for the re-run.
        assert victim.prompt_len == 104
        assert not victim.prefill_done

    def test_preempt_empty_returns_none(self):
        scheduler = FcfsScheduler(max_batch_size=4, can_admit=lambda r: True)
        assert scheduler.preempt_newest() is None

    def test_requeue_front_preserves_position(self):
        scheduler = FcfsScheduler(max_batch_size=4, can_admit=lambda r: True)
        scheduler.enqueue(make_request("later"))
        preempted = make_request("first")
        scheduler.requeue_front(preempted)
        assert scheduler.waiting[0].request_id == "first"


class TestPeakBatch:
    def test_peak(self):
        assert peak_batch_size([1, 4, 2, 4, 3]) == 4

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            peak_batch_size([])
