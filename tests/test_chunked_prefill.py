"""Chunked prefill (Sarathi-style) engine feature."""

import pytest

from repro.errors import ConfigError, SchedulingError
from repro.gpu.spec import A100
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.serving.engine import EngineConfig, LLMEngine
from repro.serving.request import Request, RequestState
from repro.workloads.traces import fixed_trace


def make_engine(chunk, **overrides):
    defaults = dict(
        shard=ShardedModel(YI_6B, 1),
        gpu=A100,
        memory_backend="vattention",
        max_batch_size=8,
        prefill_chunk_size=chunk,
    )
    defaults.update(overrides)
    return LLMEngine(EngineConfig(**defaults))


class TestRequestChunkAccounting:
    def _running_request(self, prompt=100):
        request = Request(request_id="r", prompt_len=prompt, max_new_tokens=5)
        request.state = RequestState.RUNNING
        return request

    def test_chunks_accumulate(self):
        request = self._running_request(100)
        request.record_prefill_chunk(40, now=1.0)
        assert request.prefilled_tokens == 40
        assert not request.prefill_done
        assert request.next_chunk_tokens == 60

    def test_final_chunk_completes_prefill(self):
        request = self._running_request(100)
        request.record_prefill_chunk(40, now=1.0)
        request.record_prefill_chunk(60, now=2.0)
        assert request.prefill_done
        assert request.generated == 1
        assert request.first_token_time == 2.0

    def test_overrun_rejected(self):
        request = self._running_request(100)
        with pytest.raises(SchedulingError):
            request.record_prefill_chunk(101, now=1.0)

    def test_chunk_after_done_rejected(self):
        request = self._running_request(100)
        request.record_prefill(now=1.0)
        with pytest.raises(SchedulingError):
            request.record_prefill_chunk(10, now=2.0)

    def test_nonpositive_chunk_rejected(self):
        request = self._running_request(100)
        with pytest.raises(SchedulingError):
            request.record_prefill_chunk(0, now=1.0)

    def test_preemption_resets_chunks(self):
        request = self._running_request(100)
        request.record_prefill_chunk(40, now=1.0)
        request.preempt()
        assert request.prefilled_tokens == 0


class TestChunkedEngine:
    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ConfigError):
            make_engine(chunk=0)

    def test_chunked_run_completes_identically(self):
        results = {}
        for chunk in (None, 4_096):
            engine = make_engine(chunk)
            engine.submit(
                fixed_trace(count=4, prompt_len=10_000, max_new_tokens=20)
            )
            report = engine.run()
            results[chunk] = {
                r.request_id: r.generated for r in report.finished_requests
            }
        assert results[None] == results[4_096]

    def test_chunk_count_matches_prompt(self):
        engine = make_engine(chunk=4_096)
        engine.submit(fixed_trace(count=1, prompt_len=10_000, max_new_tokens=3))
        report = engine.run()
        mixed = report.metrics.of_phase("mixed")
        assert len(mixed) == 3  # ceil(10000 / 4096)
        assert sum(r.tokens for r in mixed) >= 10_000

    def test_decodes_progress_during_long_prefill(self):
        engine = make_engine(chunk=2_048, max_batch_size=4)
        chat = fixed_trace(count=2, prompt_len=1_000, max_new_tokens=200)
        long = fixed_trace(
            count=1, prompt_len=32_768, max_new_tokens=4,
            name="long", arrivals=[1.0],
        )
        engine.submit(chat + long)
        report = engine.run()
        # Decode tokens were produced inside mixed iterations.
        mixed = report.metrics.of_phase("mixed")
        assert any(r.batch_size > 1 for r in mixed)
        assert len(report.finished_requests) == 3

    def test_throughput_not_sacrificed(self):
        makespans = {}
        for chunk in (None, 2_048):
            engine = make_engine(chunk)
            engine.submit(
                fixed_trace(count=4, prompt_len=16_000, max_new_tokens=50)
            )
            makespans[chunk] = engine.run().makespan
        assert makespans[2_048] < 1.15 * makespans[None]

    def test_works_on_paged_backend_too(self):
        engine = make_engine(
            chunk=2_048,
            memory_backend="paged",
            prefill_kernel="fa2_paged",
            decode_kernel="fa2_paged",
            block_size=256,
        )
        engine.submit(fixed_trace(count=2, prompt_len=8_000, max_new_tokens=10))
        report = engine.run()
        assert len(report.finished_requests) == 2
