"""Physical memory pool invariants."""

import pytest

from repro.errors import InvalidHandle, OutOfPhysicalMemory
from repro.gpu.phys import PhysicalMemoryPool
from repro.units import GB, MB


@pytest.fixture
def pool() -> PhysicalMemoryPool:
    return PhysicalMemoryPool(capacity=1 * GB)


class TestAllocate:
    def test_allocate_reduces_available(self, pool):
        pool.allocate(2 * MB)
        assert pool.available == 1 * GB - 2 * MB
        assert pool.committed == 2 * MB

    def test_allocates_distinct_handles(self, pool):
        a = pool.allocate(2 * MB)
        b = pool.allocate(2 * MB)
        assert a.handle_id != b.handle_id

    def test_exhaustion_raises(self, pool):
        pool.allocate(1 * GB)
        with pytest.raises(OutOfPhysicalMemory):
            pool.allocate(1)

    def test_exact_fill_is_allowed(self, pool):
        pool.allocate(1 * GB)
        assert pool.available == 0

    def test_rejects_nonpositive_size(self, pool):
        with pytest.raises(ValueError):
            pool.allocate(0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PhysicalMemoryPool(capacity=0)

    def test_counters(self, pool):
        pool.allocate(2 * MB)
        pool.allocate(2 * MB)
        assert pool.total_allocations == 2
        assert pool.live_handle_count == 2


class TestRelease:
    def test_release_restores_capacity(self, pool):
        handle = pool.allocate(4 * MB)
        pool.release(handle)
        assert pool.available == 1 * GB
        assert pool.total_releases == 1

    def test_double_free_raises(self, pool):
        handle = pool.allocate(2 * MB)
        pool.release(handle)
        with pytest.raises(InvalidHandle):
            pool.release(handle)

    def test_foreign_handle_raises(self, pool):
        other = PhysicalMemoryPool(capacity=1 * GB)
        handle = other.allocate(2 * MB)
        with pytest.raises(InvalidHandle):
            pool.release(handle)

    def test_is_live(self, pool):
        handle = pool.allocate(2 * MB)
        assert pool.is_live(handle)
        pool.release(handle)
        assert not pool.is_live(handle)


class TestHighWaterMark:
    def test_tracks_peak(self, pool):
        a = pool.allocate(100 * MB)
        b = pool.allocate(200 * MB)
        pool.release(a)
        pool.release(b)
        assert pool.high_water_mark == 300 * MB
        assert pool.committed == 0

    def test_reset(self, pool):
        handle = pool.allocate(100 * MB)
        pool.release(handle)
        pool.reset_high_water_mark()
        assert pool.high_water_mark == 0
