"""Prefix-cache subsystem: engine integration, traces, eviction."""

import pytest

from repro.cache.manager import PrefixCacheManager
from repro.errors import ConfigError
from repro.gpu.spec import A100
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.serving.engine import EngineConfig, LLMEngine
from repro.serving.request import PrefixDescriptor, Request
from repro.units import GB, MB
from repro.workloads.traces import (
    multi_turn_trace,
    shared_prefix_trace,
    trace_statistics,
)


def build_engine(enabled: bool = True, **overrides) -> LLMEngine:
    config = dict(
        shard=ShardedModel(YI_6B, 1),
        gpu=A100,
        memory_backend="vattention",
        max_batch_size=8,
        enable_prefix_cache=enabled,
    )
    config.update(overrides)
    return LLMEngine(EngineConfig(**config))


def serve(engine: LLMEngine, trace):
    engine.submit(trace)
    report = engine.run()
    ttfts = [r.ttft for r in report.finished_requests]
    return report, sum(ttfts) / len(ttfts)


class TestConfig:
    def test_requires_sharing_capable_backend(self):
        # vattention (page aliasing) and paged (block pool) can share
        # KV; uvm and static slots cannot.
        for backend in ("static", "uvm"):
            with pytest.raises(ConfigError, match="unsupported"):
                EngineConfig(
                    shard=ShardedModel(YI_6B, 1),
                    gpu=A100,
                    memory_backend=backend,
                    enable_prefix_cache=True,
                )
        for backend in ("vattention", "paged"):
            EngineConfig(
                shard=ShardedModel(YI_6B, 1),
                gpu=A100,
                memory_backend=backend,
                enable_prefix_cache=True,
            )

    def test_cache_slots_must_be_positive(self):
        with pytest.raises(ConfigError):
            build_engine(prefix_cache_slots=0)

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigError):
            build_engine(prefix_cache_budget_bytes=-1)

    def test_wrapper_exposes_vattention_manager(self):
        # engine.memory.manager is the established introspection path
        # for the vattention backend; the cache wrapper preserves it.
        engine = build_engine(True)
        assert engine.memory.manager is engine.memory.inner.manager

    def test_enabled_engine_wraps_memory(self):
        # The facade's composed backend is the cache wrapper.
        engine = build_engine(True)
        backend = getattr(engine.memory, "backend", engine.memory)
        assert isinstance(backend, PrefixCacheManager)

    def test_disabled_engine_unwrapped(self):
        engine = build_engine(False)
        backend = getattr(engine.memory, "backend", engine.memory)
        assert not isinstance(backend, PrefixCacheManager)


class TestPrefixDescriptor:
    def test_descriptor_longer_than_prompt_rejected(self):
        with pytest.raises(ConfigError):
            Request(
                request_id="r",
                prompt_len=4,
                max_new_tokens=4,
                prefix=PrefixDescriptor(group="g", token_ids=(1, 2, 3, 4, 5)),
            )

    def test_empty_descriptor_rejected(self):
        with pytest.raises(ConfigError):
            PrefixDescriptor(group="g", token_ids=())

    def test_preemption_resets_cached_prefix(self):
        request = Request(request_id="r", prompt_len=10, max_new_tokens=4)
        from repro.serving.request import RequestState

        request.state = RequestState.RUNNING
        request.apply_cached_prefix(6)
        assert request.prefilled_tokens == 6
        request.preempt()
        assert request.cached_prefix_tokens == 0
        assert request.prefilled_tokens == 0


class TestEndToEnd:
    def test_shared_prompts_strictly_faster(self):
        # The acceptance criterion: sharing factor >= 8 must strictly
        # beat the cache-less engine on prefill throughput and TTFT.
        def trace():
            return shared_prefix_trace(
                count=24, sharing_factor=8, prefix_tokens=8_192
            )

        report_off, ttft_off = serve(build_engine(False), trace())
        report_on, ttft_on = serve(build_engine(True), trace())
        assert len(report_on.finished_requests) == 24
        tp_off = report_off.metrics.prefill_throughput()
        tp_on = report_on.metrics.prefill_throughput()
        assert tp_on > tp_off
        assert ttft_on < ttft_off

    def test_stats_in_run_report(self):
        report, _ = serve(
            build_engine(True),
            shared_prefix_trace(count=24, sharing_factor=8,
                                prefix_tokens=8_192),
        )
        cache = report.prefix_cache
        assert cache is not None
        assert cache.lookups == 24
        assert cache.hits > 0
        assert cache.aliased_rows > 0
        assert cache.bytes_saved > 0
        assert cache.retained > 0
        assert cache.hit_rate == cache.hits / cache.lookups

    def test_disabled_engine_reports_no_cache(self):
        report, _ = serve(
            build_engine(False),
            shared_prefix_trace(count=8, sharing_factor=4),
        )
        assert report.prefix_cache is None

    def test_no_sharing_no_hits_no_harm(self):
        def trace():
            return shared_prefix_trace(
                count=16, sharing_factor=1, prefix_tokens=2_048
            )

        report_off, _ = serve(build_engine(False), trace())
        report_on, _ = serve(build_engine(True), trace())
        assert report_on.prefix_cache.hits == 0
        # Misses must not slow serving down.
        assert report_on.makespan == pytest.approx(
            report_off.makespan, rel=1e-6
        )

    def test_requests_without_descriptors_run_unchanged(self):
        from repro.workloads.traces import fixed_trace

        def trace():
            return fixed_trace(count=6, prompt_len=4_096, max_new_tokens=32)

        report_off, _ = serve(build_engine(False), trace())
        report_on, _ = serve(build_engine(True), trace())
        assert report_on.prefix_cache.lookups == 0
        assert report_on.makespan == pytest.approx(
            report_off.makespan, rel=1e-6
        )

    def test_multi_turn_sessions_hit(self):
        report, _ = serve(
            build_engine(True), multi_turn_trace(sessions=4, turns=3)
        )
        cache = report.prefix_cache
        # Every follow-up turn extends its session's history: 2 of 3
        # turns per session can reuse the cache.
        assert cache.hits >= 4
        assert cache.hit_tokens > 0
        assert len(report.finished_requests) == 12

    def test_chunked_prefill_composes_with_cache(self):
        def trace():
            return shared_prefix_trace(
                count=16, sharing_factor=8, prefix_tokens=8_192
            )

        report_off, ttft_off = serve(
            build_engine(False, prefill_chunk_size=2_048), trace()
        )
        report_on, ttft_on = serve(
            build_engine(True, prefill_chunk_size=2_048), trace()
        )
        assert report_on.prefix_cache.hits > 0
        assert len(report_on.finished_requests) == 16
        assert ttft_on < ttft_off

    def test_prefill_token_accounting_consistent_across_modes(self):
        # Both prefill modes account *served* prompt tokens: total
        # prefill-side tokens equal the trace's prompt tokens whether
        # prompts run monolithically or chunked, cache hits included.
        def trace():
            return shared_prefix_trace(
                count=12, sharing_factor=6, prefix_tokens=8_192
            )

        expected = sum(r.prompt_len for r in trace())
        mono, _ = serve(build_engine(True), trace())
        chunked, _ = serve(
            build_engine(True, prefill_chunk_size=2_048), trace()
        )
        mono_tokens = sum(
            r.tokens for r in mono.metrics.of_phase("prefill")
        )
        chunked_tokens = sum(
            r.tokens - (r.batch_size - 1)  # decode piggyback tokens
            for r in chunked.metrics.of_phase("mixed")
        )
        assert mono_tokens == expected
        assert chunked_tokens == expected

    def test_dedup_bytes_visible_while_sharing(self):
        engine = build_engine(True)
        engine.submit(
            shared_prefix_trace(count=16, sharing_factor=8,
                                prefix_tokens=8_192)
        )
        engine.run()
        # Cumulative savings survive in the final report.
        assert engine.memory.report().bytes_saved > 0


class TestRetainedSlots:
    def test_retained_slot_does_not_grow_lookahead_rows(self):
        # A retained prefix slot never decodes; background overlap
        # allocation must not keep pre-mapping a lookahead row for it
        # (which would pin unreclaimable memory). 8192 tokens is
        # exactly 4 page-group rows for Yi-6B at 2MB page groups.
        engine = build_engine(True)
        trace = shared_prefix_trace(
            count=8, sharing_factor=4, prefix_tokens=8_192,
        )
        engine.submit(trace)
        engine.run()
        vat = engine.memory.inner.manager
        rows_needed = {
            e.slot: vat.rows_for_context(e.tokens)
            for e in engine.memory.tree.entries
            if not e.live
        }
        assert rows_needed
        for slot_id, needed in rows_needed.items():
            assert vat.slots[slot_id].frozen
            assert vat.slots[slot_id].mapped_rows == needed


class TestEvictionAndBudget:
    def test_budget_bounds_retained_bytes(self):
        budget = 2 * GB
        report, _ = serve(
            build_engine(True, prefix_cache_budget_bytes=budget),
            shared_prefix_trace(count=24, sharing_factor=4,
                                prefix_tokens=8_192),
        )
        cache = report.prefix_cache
        assert cache.cached_bytes <= budget
        assert cache.evictions > 0

    def test_zero_ish_budget_still_serves_from_live_entries(self):
        def trace():
            return shared_prefix_trace(
                count=24, sharing_factor=8, prefix_tokens=8_192
            )

        report_off, ttft_off = serve(build_engine(False), trace())
        report_on, ttft_on = serve(
            build_engine(True, prefix_cache_budget_bytes=1 * MB), trace()
        )
        assert report_on.prefix_cache.hits > 0
        assert ttft_on < ttft_off

    def test_memory_pressure_evicts_instead_of_starving(self):
        # A KV budget sized so cached prefixes must be evicted to admit
        # new work: the run must still complete every request.
        report, _ = serve(
            build_engine(True, kv_budget_bytes=3 * GB, max_batch_size=4),
            shared_prefix_trace(count=12, sharing_factor=4,
                                prefix_tokens=8_192),
        )
        assert len(report.finished_requests) == 12
        assert report.prefix_cache.evictions > 0
        assert report.prefix_cache.evicted_rows > 0
        assert report.prefix_cache.hits > 0  # still serving hits


class TestTraces:
    def test_shared_prefix_groups(self):
        trace = shared_prefix_trace(count=12, sharing_factor=4,
                                    prefix_tokens=100)
        groups = {r.prefix.group for r in trace}
        assert len(groups) == 3
        by_group = {}
        for request in trace:
            by_group.setdefault(request.prefix.group, []).append(request)
        for members in by_group.values():
            first = members[0].prefix.token_ids[:100]
            assert all(m.prefix.token_ids[:100] == first for m in members)
        # Private suffixes never collide across requests.
        suffixes = [r.prefix.token_ids[100:] for r in trace]
        assert len({s[0] for s in suffixes}) == len(trace)

    def test_shared_prefix_statistics(self):
        trace = shared_prefix_trace(count=32, sharing_factor=8)
        stats = trace_statistics(trace)
        assert stats["count"] == 32
        assert stats["prompt_min"] >= 2_048  # prefix + suffix

    def test_sharing_factor_one_unique_prefixes(self):
        trace = shared_prefix_trace(count=8, sharing_factor=1,
                                    prefix_tokens=64)
        firsts = {r.prefix.token_ids[0] for r in trace}
        assert len(firsts) == 8

    def test_multi_turn_prefix_growth(self):
        trace = multi_turn_trace(sessions=1, turns=3, turn_gap=10.0)
        assert len(trace) == 3
        t0, t1, t2 = trace
        assert t1.prefix.token_ids[: len(t0.prefix.token_ids)] == \
            t0.prefix.token_ids
        assert t2.prefix.token_ids[: len(t1.prefix.token_ids)] == \
            t1.prefix.token_ids
        assert t0.arrival_time < t1.arrival_time < t2.arrival_time

    def test_multi_turn_includes_responses_in_history(self):
        trace = multi_turn_trace(sessions=1, turns=2)
        t0, t1 = trace
        # Turn 1's prompt = turn 0's prompt + its response + new text.
        assert t1.prompt_len > t0.prompt_len + t0.max_new_tokens

    def test_trace_validation(self):
        with pytest.raises(ConfigError):
            shared_prefix_trace(count=0, sharing_factor=4)
        with pytest.raises(ConfigError):
            shared_prefix_trace(count=4, sharing_factor=0)
        with pytest.raises(ConfigError):
            multi_turn_trace(sessions=0, turns=2)
        with pytest.raises(ConfigError):
            multi_turn_trace(sessions=1, turns=1, turn_gap=-1.0)
