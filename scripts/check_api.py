#!/usr/bin/env python3
"""Check the public API surface against a committed snapshot.

Usage::

    python scripts/check_api.py            # compare against the snapshot
    python scripts/check_api.py --update   # re-bless the snapshot

Walks a fixed list of public modules and records, per module, the
sorted public names (``__all__`` when defined, else non-underscore
top-level names) — plus the field names of the config dataclasses that
form the construction API. The snapshot lives in
``scripts/api_surface.json``; any drift (a removed name, a renamed
config field, an accidental new export) fails CI until the change is
deliberately blessed with ``--update``. Run from the repo root with
``src`` importable (CI installs the package).

No third-party dependencies, like the rest of the repo.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
import sys
from pathlib import Path
from typing import Dict, List

SNAPSHOT = Path(__file__).resolve().parent / "api_surface.json"

#: The modules whose exports constitute the supported API. Order is
#: cosmetic (the snapshot is keyed by name); membership is the contract.
MODULES = [
    "repro.cache",
    "repro.cache.backends",
    "repro.cache.manager",
    "repro.cache.radix",
    "repro.cluster",
    "repro.memory",
    "repro.memory.config",
    "repro.memory.manager",
    "repro.memory.tier",
    "repro.metrics.telemetry",
    "repro.metrics.tracecheck",
    "repro.scheduling",
    "repro.serving.engine",
    "repro.serving.memory",
    "repro.serving.swap",
    "repro.workloads.traces",
]

#: Config dataclasses whose *field names* are construction API: renaming
#: or dropping a field breaks every caller spelling it as a kwarg.
CONFIG_CLASSES = [
    ("repro.serving.engine", "EngineConfig"),
    ("repro.memory.config", "MemoryConfig"),
    ("repro.cluster", "ClusterConfig"),
]


def public_names(module) -> List[str]:
    declared = getattr(module, "__all__", None)
    if declared is not None:
        return sorted(declared)
    return sorted(
        name for name in vars(module)
        if not name.startswith("_")
        and not isinstance(vars(module)[name], type(sys))  # skip imports
    )


def capture() -> Dict[str, object]:
    surface: Dict[str, object] = {"modules": {}, "config_fields": {}}
    for name in MODULES:
        module = importlib.import_module(name)
        surface["modules"][name] = public_names(module)
    for module_name, class_name in CONFIG_CLASSES:
        cls = getattr(importlib.import_module(module_name), class_name)
        surface["config_fields"][f"{module_name}.{class_name}"] = [
            field.name for field in dataclasses.fields(cls)
        ]
    return surface


def main(argv: List[str]) -> int:
    surface = capture()
    rendered = json.dumps(surface, indent=2, sort_keys=True) + "\n"
    if "--update" in argv:
        SNAPSHOT.write_text(rendered)
        print(f"blessed {SNAPSHOT.relative_to(Path.cwd())}"
              if SNAPSHOT.is_relative_to(Path.cwd()) else f"blessed {SNAPSHOT}")
        return 0
    if not SNAPSHOT.exists():
        print(f"{SNAPSHOT} is missing: create it with --update",
              file=sys.stderr)
        return 1
    committed = json.loads(SNAPSHOT.read_text())
    if committed == surface:
        modules = len(surface["modules"])
        print(f"API surface OK: {modules} modules, "
              f"{len(surface['config_fields'])} config classes")
        return 0
    # Report the drift precisely, section by section.
    for section in ("modules", "config_fields"):
        old, new = committed.get(section, {}), surface[section]
        for key in sorted(set(old) | set(new)):
            if key not in old:
                print(f"{section}: {key} is new (not in snapshot)",
                      file=sys.stderr)
            elif key not in new:
                print(f"{section}: {key} disappeared", file=sys.stderr)
            elif old[key] != new[key]:
                removed = sorted(set(old[key]) - set(new[key]))
                added = sorted(set(new[key]) - set(old[key]))
                if removed:
                    print(f"{section}: {key} lost {removed}",
                          file=sys.stderr)
                if added:
                    print(f"{section}: {key} gained {added}",
                          file=sys.stderr)
                if not removed and not added:
                    print(f"{section}: {key} reordered fields "
                          f"{old[key]} -> {new[key]}", file=sys.stderr)
    print("API surface drifted: bless deliberate changes with "
          "`python scripts/check_api.py --update`", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
