#!/usr/bin/env python3
"""Check that relative markdown links resolve to real files.

Usage::

    python scripts/check_links.py README.md docs

Arguments are markdown files or directories (scanned recursively for
``*.md``). Every inline link or image whose target is *relative* (no
URL scheme, not an in-page ``#anchor``) must point at an existing file
or directory, resolved against the containing file. External URLs are
not fetched — CI stays hermetic. Exit code 1 if anything is broken.

No third-party dependencies, like the rest of the repo.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline links/images: [text](target) / ![alt](target). Reference-style
#: definitions ([id]: target) are rare here and intentionally ignored.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def iter_markdown(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of markdown files."""
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend(sorted(path.rglob("*.md")))
        else:
            found.append(path)
    return found


def check_file(path: Path) -> List[Tuple[str, str]]:
    """Broken (target, reason) pairs of one markdown file."""
    problems: List[Tuple[str, str]] = []
    try:
        text = path.read_text()
    except OSError as error:
        return [(str(path), f"unreadable: {error}")]
    # Links inside fenced code blocks are code, not navigation.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in _LINK.finditer(text):
        target = match.group(1)
        if _SCHEME.match(target) or target.startswith("#"):
            continue  # external URL / in-page anchor
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            problems.append((target, f"missing: {resolved}"))
    return problems


def main(argv: List[str]) -> int:
    targets = argv or ["README.md", "docs"]
    files = iter_markdown(targets)
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 1
    broken = 0
    for path in files:
        for target, reason in check_file(path):
            print(f"{path}: broken link {target!r} ({reason})",
                  file=sys.stderr)
            broken += 1
    checked = len(files)
    if broken:
        print(f"{broken} broken link(s) across {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"link check OK: {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
