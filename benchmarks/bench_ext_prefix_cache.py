"""Ablation bench: radix-tree prefix cache vs. cache-less serving."""

from repro.experiments import ext_prefix_cache as driver
from repro.units import GB


def test_ext_prefix_cache(benchmark):
    rows = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    print("\nPrefix cache: shared-system-prompt serving, cache off -> on")
    for row in rows:
        print(
            f"  x{row.sharing_factor:<3}: {row.throughput_gain:.2f}x prefill "
            f"throughput, -{row.ttft_reduction:.0%} TTFT, "
            f"{row.hits}/{row.lookups} hits, "
            f"{row.bytes_saved / GB:.1f}GB saved"
        )
    by_factor = {row.sharing_factor: row for row in rows}
    # No sharing -> no hits, and the cache must not hurt the workload.
    control = by_factor[1]
    assert control.hits == 0
    assert control.prefill_throughput_on >= control.prefill_throughput_off
    # The acceptance bar: at sharing factor >= 8 the cache strictly wins
    # on both prefill throughput and mean TTFT, with visible stats.
    for factor, row in by_factor.items():
        if factor < 8:
            continue
        assert row.prefill_throughput_on > row.prefill_throughput_off
        assert row.mean_ttft_on < row.mean_ttft_off
        assert row.hits > 0
        assert row.aliased_rows > 0
        assert row.bytes_saved > 0
    # More sharing -> more reuse.
    gains = [by_factor[f].throughput_gain for f in sorted(by_factor)]
    assert gains == sorted(gains)


def test_ext_prefix_cache_budgets(benchmark):
    rows = benchmark.pedantic(driver.run_budgets, rounds=1, iterations=1)
    print("\nPrefix cache: retention budget sweep (sharing factor 8)")
    for row in rows:
        budget = (
            "unlimited"
            if row.cache_budget_bytes is None
            else f"{row.cache_budget_bytes / GB:.1f}GB"
        )
        print(
            f"  {budget:>9}: {row.throughput_gain:.2f}x prefill, "
            f"{row.hits}/{row.lookups} hits, {row.evictions} evictions"
        )
    # Tighter budgets force more evictions, yet live in-batch entries
    # keep the cache strictly ahead of cache-less serving.
    evictions = [row.evictions for row in rows]
    assert evictions == sorted(evictions)
    for row in rows:
        assert row.prefill_throughput_on > row.prefill_throughput_off
        assert row.mean_ttft_on < row.mean_ttft_off
