"""Benchmark regenerating Figure 12 (overlapped allocation ablation)."""

from repro.experiments import fig12_overlap_ablation as driver


def test_fig12_overlap_ablation(benchmark):
    without, with_overlap = benchmark.pedantic(
        driver.run, rounds=1, iterations=1
    )
    print("\nFigure 12: decode latency with/without overlapped allocation")
    print(
        f"  without: mean {without.mean_latency * 1e3:.2f}ms, "
        f"{without.spike_count} spikes, worst "
        f"{without.max_spike_seconds * 1e3:.2f}ms"
    )
    print(
        f"  with:    mean {with_overlap.mean_latency * 1e3:.2f}ms, "
        f"{with_overlap.spike_count} spikes"
    )
    # Paper: synchronous allocation spikes 5-15ms; overlap removes them.
    assert without.spike_count > 0
    assert 2e-3 < without.max_spike_seconds < 20e-3
    assert with_overlap.spike_count == 0
