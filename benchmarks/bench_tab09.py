"""Benchmark regenerating Table 9 (physical allocation bandwidth)."""

from repro.experiments import tab09_alloc_bandwidth as driver
from repro.units import KB, MB


def test_tab09_alloc_bandwidth(benchmark):
    rows = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    print("\nTable 9: allocation bandwidth (GB/s)")
    for row in rows:
        cells = " ".join(
            f"{size // 1024}KB:{bw:.2f}" if size < MB else f"2MB:{bw:.2f}"
            for size, bw in sorted(row.gb_per_second.items())
        )
        print(f"  TP-{row.tp_degree}: {cells}")
    tp1 = next(r for r in rows if r.tp_degree == 1).gb_per_second
    tp2 = next(r for r in rows if r.tp_degree == 2).gb_per_second
    # Orders of magnitude above Figure 4's ~750MB/s demand, scaling
    # monotonically with page-group size and linearly with TP degree.
    assert tp1[64 * KB] > 5.0
    assert tp1[2 * MB] > tp1[64 * KB]
    assert abs(tp2[64 * KB] - 2 * tp1[64 * KB]) < 1e-9
