"""Ablation bench: chunked prefill vs monolithic (paper ref [36])."""

from repro.experiments import ext_chunked_prefill as driver


def test_ext_chunked_prefill(benchmark):
    rows = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    print("\nChunked prefill: worst decode stall behind a 64K prompt")
    for row in rows:
        name = "monolithic" if row.chunk_size is None else f"chunk={row.chunk_size}"
        print(f"  {name:>12}: stall {row.worst_decode_stall:.3f}s, "
              f"makespan {row.makespan:.1f}s")
    by_chunk = {row.chunk_size: row for row in rows}
    # Monolithic prefill stalls decodes for the whole prompt; chunking
    # bounds the stall by roughly one chunk's processing time, and
    # smaller chunks shrink it monotonically.
    assert by_chunk[None].worst_decode_stall > 5.0
    assert by_chunk[8_192].worst_decode_stall < 3.0
    assert (
        by_chunk[2_048].worst_decode_stall
        < by_chunk[8_192].worst_decode_stall
    )
    # Throughput is not sacrificed: makespans stay within a few percent.
    makespans = [row.makespan for row in rows]
    assert max(makespans) / min(makespans) < 1.1
