"""Ablation bench: hybrid-batch chunked prefill vs monolithic ([36])."""

from repro.experiments import ext_chunked_prefill as driver


def test_ext_chunked_prefill(benchmark):
    rows = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    print("\nHybrid batching: worst decode stall behind a 64K prompt")
    for row in rows:
        name = (
            "monolithic"
            if row.token_budget is None
            else f"budget={row.token_budget}"
        )
        print(f"  {name:>12}: stall {row.worst_decode_stall:.3f}s, "
              f"makespan {row.makespan:.1f}s")
    by_budget = {row.token_budget: row for row in rows}
    # Monolithic prefill stalls decodes for the whole prompt; hybrid
    # batching bounds the stall by roughly one budget's processing
    # time, and smaller budgets shrink it monotonically.
    assert by_budget[None].worst_decode_stall > 5.0
    assert by_budget[8_192].worst_decode_stall < 3.0
    assert (
        by_budget[2_048].worst_decode_stall
        < by_budget[8_192].worst_decode_stall
    )
    # Throughput is not sacrificed: makespans stay within a few percent.
    makespans = [row.makespan for row in rows]
    assert max(makespans) / min(makespans) < 1.1
