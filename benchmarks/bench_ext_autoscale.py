"""Autoscaling bench: SLA-driven elasticity vs the static dilemma.

Run under pytest (``pytest benchmarks/bench_ext_autoscale.py``) for the
acceptance assertions, or standalone to emit JSON::

    PYTHONPATH=src python benchmarks/bench_ext_autoscale.py --output out.json
"""

import dataclasses
import json

from repro.experiments import ext_autoscale as driver
from repro.metrics.telemetry import TelemetryRegistry, enabled


def _rows():
    return driver.run()


def test_ext_autoscale(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    print("\nElastic autoscaling under the MMPP bursty trace")
    for row in rows:
        print(
            f"  {row.fleet:>11}: {row.replica_seconds:7.1f} replica-s "
            f"p99 TTFT {row.p99_ttft:6.2f}s "
            f"attainment {row.slo_attainment:5.1%} "
            f"+{row.scale_ups}/-{row.drains}"
        )
    by_fleet = {row.fleet: row for row in rows}
    static_max = by_fleet["static_max"]
    static_min = by_fleet["static_min"]
    sla = by_fleet["sla"]
    queue = by_fleet["queue_depth"]

    # The dilemma the autoscaler escapes: burst-sized provisioning
    # meets the SLO, average-sized provisioning cannot.
    assert static_max.p99_ttft <= driver.SLO_TTFT
    assert static_min.p99_ttft > driver.SLO_TTFT

    # The acceptance bar: the SLA-driven policy meets the p99 TTFT
    # objective using materially (>= 25%) fewer replica-seconds than
    # static max provisioning.
    assert sla.p99_ttft <= driver.SLO_TTFT
    savings = driver.replica_second_savings(rows, "sla")
    assert savings >= 0.25, f"only {savings:.1%} replica-seconds saved"

    # Elasticity actually moved: the fleet grew to the cap during
    # bursts and drained replicas back out during lulls.
    for row in (sla, queue):
        assert row.scale_ups > 0
        assert row.drains > 0
        assert row.peak_serving == driver.MAX_REPLICAS
    # Static fleets carry no lifecycle timeline at all.
    for row in (static_max, static_min):
        assert row.scale_ups == 0 and row.drains == 0

    # The queue-depth control also escapes the dilemma on this trace
    # (it reacts to backlog, which here tracks the bursts closely).
    assert queue.p99_ttft <= driver.SLO_TTFT


def test_ext_autoscale_deterministic(benchmark):
    first = benchmark.pedantic(
        lambda: driver.serve("sla"), rounds=1, iterations=1
    )
    second = driver.serve("sla")
    assert first.replica_seconds == second.replica_seconds
    assert first.p99_ttft() == second.p99_ttft()
    assert first.scale_events == second.scale_events
    assert first.end_time == second.end_time


def test_static_min_attribution(benchmark):
    def _serve():
        with enabled(TelemetryRegistry(record_spans=True)):
            return driver.serve("static_min")

    report = benchmark.pedantic(_serve, rounds=1, iterations=1)
    attribution = report.latency_attribution
    assert attribution is not None
    assert attribution["requests"] == driver.REQUESTS
    assert attribution["closure_violations"] == 0
    # The under-provisioned fleet's p99 TTFT tail is queueing, not
    # compute: requests pile up behind too few replicas during bursts.
    assert attribution["dominant_p99_ttft_phase"] == "queue_wait"


def main() -> None:
    """Standalone mode: run the sweep and write it as JSON."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default="autoscale_bench.json",
        help="path the JSON results are written to",
    )
    args = parser.parse_args()
    rows, reports = driver.run_with_reports()
    payload = {
        "experiment": "ext_autoscale",
        "requests": driver.REQUESTS,
        "qps": driver.QPS,
        "slo_ttft": driver.SLO_TTFT,
        "fleet_bounds": [driver.MIN_REPLICAS, driver.MAX_REPLICAS],
        "sla_replica_second_savings": driver.replica_second_savings(rows),
        "rows": [dataclasses.asdict(row) for row in rows],
        # Full fleet reports through the shared serialization path.
        "reports": {
            fleet: report.to_json() for fleet, report in reports.items()
        },
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(
        f"wrote {args.output}: {len(rows)} fleet shapes, "
        f"sla saves {payload['sla_replica_second_savings']:.1%} "
        f"replica-seconds"
    )


if __name__ == "__main__":
    main()
