"""Benchmark regenerating Figure 4 (decode throughput & alloc demand)."""

from repro.experiments import fig04_alloc_bandwidth_demand as driver


def test_fig04_alloc_bandwidth_demand(benchmark):
    rows = benchmark(driver.run)
    print("\nFigure 4: decode throughput and KV allocation rate")
    for row in rows:
        print(
            f"  {row.model:>12} B={row.batch_size:>3}: "
            f"{row.tokens_per_second:>7.0f} tok/s, "
            f"{row.alloc_mb_per_second:>6.1f} MB/s"
        )
    peak = driver.peak_allocation_rate_mb(rows)
    print(f"  peak allocation demand: {peak:.0f} MB/s (paper: <= ~750)")
    # Demand saturates far below what VMM mapping provides (Table 9).
    assert peak < 1_000
