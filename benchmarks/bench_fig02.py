"""Benchmark regenerating Figure 2 (paged prefill kernel overhead)."""

from repro.experiments import fig02_prefill_kernel_overhead as driver


def test_fig02_prefill_kernel_overhead(benchmark):
    rows = benchmark(driver.run)
    by_ctx = {r.context_len: r for r in rows}
    print("\nFigure 2: paged prefill overhead (Llama-3-8B, 1xA100)")
    for row in rows:
        print(
            f"  ctx={row.context_len:>6}: FA2_Paged {row.fa2_overhead:.2f}x, "
            f"FI_Paged {row.fi_overhead:.2f}x"
        )
    # Paper: FA2 overhead rises 1.07x -> 1.37x; FI peaks at 1.42x.
    assert by_ctx[1_024].fa2_overhead < by_ctx[32_768].fa2_overhead
    assert max(r.fi_overhead for r in rows) > 1.35
