"""Benchmark regenerating Figure 14 (page size vs kernel runtime)."""

from repro.experiments import fig14_page_size_effect as driver


def test_fig14_page_size_effect(benchmark):
    rows = benchmark(driver.run)
    print("\nFigure 14: kernel runtime ratio (64KB / 2MB pages)")
    for row in rows:
        print(f"  {row.phase:>8} point={row.point:>6}: {row.ratio:.2f}x")
    # Paper: 0.98-1.02x across the board — no TLB thrashing.
    assert all(0.98 <= row.ratio <= 1.02 for row in rows)
