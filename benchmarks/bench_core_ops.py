"""Microbenchmarks of the core memory-manager operations.

Not a paper figure: these measure the *simulator's* own hot paths
(step(), block extension, reqId churn) so regressions in the library's
Python performance are caught — the end-to-end experiments run millions
of these operations.
"""

import pytest

from repro.core.config import VAttentionConfig
from repro.core.vattention import VAttention
from repro.gpu.device import Device
from repro.gpu.spec import A100
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.paged.block_manager import BlockManager
from repro.units import GB, MB


@pytest.fixture
def manager():
    device = Device(A100, reserved_bytes=60 * GB)
    config = VAttentionConfig(
        shard=ShardedModel(YI_6B, 1),
        max_batch_size=32,
        page_group_size=2 * MB,
    )
    return VAttention(device, config)


def test_bench_vattention_step_steady_state(benchmark, manager):
    # Steady state: contexts already fully backed, so step() is pure
    # bookkeeping — the per-iteration overhead every decode pays.
    reqs = [manager.alloc_reqid() for _ in range(16)]
    seq = [0] * 32
    for req in reqs:
        seq[req] = 16_384
    manager.step(seq)

    def one_decode_step():
        assert manager.step(seq) == 0

    benchmark(one_decode_step)


def test_bench_vattention_reqid_churn(benchmark, manager):
    def churn():
        req = manager.alloc_reqid()
        manager.free_reqid(req)

    benchmark(churn)


def test_bench_block_manager_extend(benchmark):
    blocks = BlockManager(ShardedModel(YI_6B, 1), 40 * GB, block_size=16)
    blocks.allocate("r", 16_384)
    state = {"ctx": 16_384}
    # Recycle the request when the pool nears exhaustion so the
    # benchmark can run an unbounded number of iterations.
    reset_at = (blocks.num_blocks - 8) * 16

    def extend():
        state["ctx"] += 16
        if state["ctx"] >= reset_at:
            blocks.free("r")
            blocks.allocate("r", 16_384)
            state["ctx"] = 16_384 + 16
        blocks.extend("r", state["ctx"])

    benchmark(extend)


def test_bench_block_table_prepare(benchmark):
    from repro.paged.block_table import block_table_cost

    cost = block_table_cost("vLLM")
    counts = [1024] * 32

    benchmark(lambda: cost.prepare_seconds(counts))
