"""Perf-regression gate over the decode fast-forwarding speedups.

Compares a fresh ``bench_speed.py`` result against the committed
``BENCH_speed.json`` baseline so the PR-4 fast-forward wins cannot rot
silently. The gated metric is the **fig09-class aggregate speedup**
(the number PR 4's acceptance bar targets) plus every per-case
speedup, and — when a fresh ``bench_scale.py`` JSON is supplied — the
day-in-the-life benchmark's requests-per-wall-second.

Tolerances are **profile-guided**: the committed ``BENCH_noise.json``
records, per gated metric, how much repeated ``--quick`` runs on the
reference machine actually swing (three times the observed half-spread
around the median, clamped to [10%, 60%]). A metric regresses only
when it falls below ``(1 - band) * baseline`` for *its own* measured
band — a steady metric gets a tight gate, a noisy one a loose gate,
and neither eats the other's margin the way one fixed tolerance did.
Metrics absent from the noise profile (or when the file is missing)
fall back to the fixed ``--tolerance`` / ``--case-tolerance`` /
``--scale-tolerance`` defaults.

Recalibrate after any perf-relevant change with::

    python benchmarks/check_regression.py --calibrate 5

which re-runs both quick benchmarks N times and rewrites
``BENCH_noise.json`` (commit it alongside the re-pinned baselines).

Compare like scale with like scale: quick runs against the committed
``BENCH_speed_quick.json``, full runs (nightly) against the full-scale
``BENCH_speed.json`` — quick and full speedups differ systematically,
and a cross-scale comparison would eat most of the tolerance before
any real regression. The same applies to ``bench_scale`` routers: the
state-aware and state-blind days have different throughput profiles,
so scale runs are gated per router.

Usage (the CI bench job)::

    python benchmarks/bench_speed.py --quick --output fresh.json
    python benchmarks/bench_scale.py --quick --output fresh_scale.json
    python benchmarks/check_regression.py \
        --baseline BENCH_speed_quick.json --fresh fresh.json \
        --scale-baseline BENCH_scale_quick.json \
        --scale-fresh fresh_scale.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import subprocess
import sys
import tempfile

#: Calibrated bands are clamped to this range: below 10% the gate would
#: trip on scheduler jitter the repeats happened to miss; above 60% it
#: no longer distinguishes rot from noise and the metric needs a better
#: benchmark, not a wider band.
BAND_FLOOR = 0.10
BAND_CEIL = 0.60


def _band(samples) -> float:
    """Noise band for one metric: 3x the observed half-spread of the
    repeated measurements, relative to their median, clamped."""
    mid = statistics.median(samples)
    half_spread = (max(samples) - min(samples)) / 2.0
    return round(
        min(BAND_CEIL, max(BAND_FLOOR, 3.0 * half_spread / mid)), 3
    )


def check(
    baseline: dict,
    fresh: dict,
    tolerance: float,
    case_tolerance: float,
    noise: dict,
) -> list:
    """Returns the list of human-readable regression findings."""
    problems = []
    speed_noise = noise.get("speed", {})
    base_agg = baseline["fig09_class_speedup"]
    fresh_agg = fresh["fig09_class_speedup"]
    agg_band = speed_noise.get("fig09_class_speedup", tolerance)
    floor = (1.0 - agg_band) * base_agg
    if fresh_agg < floor:
        problems.append(
            f"fig09-class aggregate speedup regressed: {fresh_agg:.2f}x "
            f"vs baseline {base_agg:.2f}x (floor {floor:.2f}x at "
            f"{agg_band:.0%} band)"
        )
    base_cases = {c["case"]: c["speedup"] for c in baseline["cases"]}
    case_bands = speed_noise.get("cases", {})
    for case in fresh["cases"]:
        name = case["case"]
        if name not in base_cases:
            continue  # e.g. the fleet-size-suffixed cluster case
        band = case_bands.get(name, case_tolerance)
        case_floor = (1.0 - band) * base_cases[name]
        if case["speedup"] < case_floor:
            problems.append(
                f"{name}: speedup {case['speedup']:.2f}x vs baseline "
                f"{base_cases[name]:.2f}x (floor {case_floor:.2f}x at "
                f"{band:.0%} band)"
            )
    return problems


def check_scale(
    baseline: dict, fresh: dict, tolerance: float, noise: dict
) -> list:
    """Gate the day-in-the-life benchmark's wall-clock throughput."""
    problems = []
    for key in ("quick", "router"):
        if baseline.get(key) != fresh.get(key):
            problems.append(
                f"bench_scale baseline and fresh run differ on {key!r} "
                f"(baseline {baseline.get(key)!r}, fresh "
                f"{fresh.get(key)!r}) — compare like with like"
            )
    if problems:
        return problems
    band = noise.get("scale", {}).get(
        str(fresh.get("router")), tolerance
    )
    base = baseline["requests_per_wall_second"]
    current = fresh["requests_per_wall_second"]
    floor = (1.0 - band) * base
    if current < floor:
        problems.append(
            f"bench_scale throughput regressed: {current:,.0f} req/s "
            f"vs baseline {base:,.0f} req/s (floor {floor:,.0f} at "
            f"{band:.0%} band)"
        )
    return problems


def calibrate(samples: int, noise_path: str) -> int:
    """Re-measure the quick benchmarks ``samples`` times and write the
    per-metric noise bands they exhibit."""
    bench_dir = pathlib.Path(__file__).parent
    # The benchmark subprocesses run inside a scratch directory, so a
    # relative PYTHONPATH (CI sets `src`) would stop resolving — hand
    # them the absolute package path explicitly.
    env = dict(os.environ)
    src = str(bench_dir.parent / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    agg = []
    cases: dict = {}
    scale: dict = {}
    with tempfile.TemporaryDirectory() as scratch:
        out = pathlib.Path(scratch) / "run.json"
        for index in range(samples):
            print(f"calibration pass {index + 1}/{samples}: bench_speed")
            subprocess.run(
                [
                    sys.executable,
                    str(bench_dir / "bench_speed.py"),
                    "--quick",
                    "--output",
                    str(out),
                ],
                check=True,
                cwd=scratch,
                env=env,
            )
            run = json.loads(out.read_text())
            agg.append(run["fig09_class_speedup"])
            for case in run["cases"]:
                cases.setdefault(case["case"], []).append(case["speedup"])
        sys.path.insert(0, str(bench_dir))
        from bench_scale import ROUTERS

        for router in ROUTERS:
            for index in range(samples):
                print(
                    f"calibration pass {index + 1}/{samples}: "
                    f"bench_scale ({router})"
                )
                subprocess.run(
                    [
                        sys.executable,
                        str(bench_dir / "bench_scale.py"),
                        "--quick",
                        "--router",
                        router,
                        "--output",
                        str(out),
                    ],
                    check=True,
                    cwd=scratch,
                    env=env,
                )
                run = json.loads(out.read_text())
                scale.setdefault(router, []).append(
                    run["requests_per_wall_second"]
                )
    profile = {
        "benchmark": "bench_noise",
        "samples": samples,
        "speed": {
            "fig09_class_speedup": _band(agg),
            "cases": {
                name: _band(values) for name, values in sorted(cases.items())
            },
        },
        "scale": {
            router: _band(values) for router, values in sorted(scale.items())
        },
    }
    with open(noise_path, "w") as handle:
        json.dump(profile, handle, indent=1)
        handle.write("\n")
    print(f"wrote {noise_path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default="BENCH_speed.json",
        help="committed baseline JSON",
    )
    parser.add_argument(
        "--fresh",
        default=None,
        help="freshly measured bench_speed JSON (omit to skip the gate)",
    )
    parser.add_argument(
        "--scale-baseline",
        default="BENCH_scale_quick.json",
        help="committed bench_scale baseline JSON",
    )
    parser.add_argument(
        "--scale-fresh",
        default=None,
        help="freshly measured bench_scale JSON (omit to skip the gate)",
    )
    parser.add_argument(
        "--noise",
        default="BENCH_noise.json",
        help="committed per-metric noise bands (missing file: fall back "
        "to the fixed tolerances)",
    )
    parser.add_argument(
        "--calibrate",
        type=int,
        default=None,
        metavar="N",
        help="re-run the quick benchmarks N times and rewrite --noise "
        "instead of gating",
    )
    parser.add_argument(
        "--scale-tolerance",
        type=float,
        default=0.50,
        help="fallback fractional loss of bench_scale throughput",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="fallback fractional loss of the aggregate speedup",
    )
    parser.add_argument(
        "--case-tolerance",
        type=float,
        default=0.50,
        help="fallback fractional loss of any single case's speedup",
    )
    args = parser.parse_args(argv)
    if args.calibrate is not None:
        if args.calibrate < 2:
            parser.error("--calibrate needs at least 2 samples")
        return calibrate(args.calibrate, args.noise)
    if args.fresh is None and args.scale_fresh is None:
        parser.error("nothing to gate: pass --fresh and/or --scale-fresh")
    try:
        with open(args.noise) as handle:
            noise = json.load(handle)
        noise_note = f"noise profile {args.noise}"
    except FileNotFoundError:
        noise = {}
        noise_note = "fixed tolerances (no noise profile)"
    problems = []
    speed_note = "no speed run supplied"
    if args.fresh is not None:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        with open(args.fresh) as handle:
            fresh = json.load(handle)
        problems += check(
            baseline, fresh, args.tolerance, args.case_tolerance, noise
        )
        speed_note = (
            f"aggregate {fresh['fig09_class_speedup']:.2f}x vs "
            f"baseline {baseline['fig09_class_speedup']:.2f}x "
            f"({len(fresh['cases'])} cases)"
        )
    scale_note = ""
    if args.scale_fresh is not None:
        with open(args.scale_baseline) as handle:
            scale_baseline = json.load(handle)
        with open(args.scale_fresh) as handle:
            scale_fresh = json.load(handle)
        problems += check_scale(
            scale_baseline, scale_fresh, args.scale_tolerance, noise
        )
        scale_note = (
            f", bench_scale "
            f"{scale_fresh['requests_per_wall_second']:,.0f} req/s vs "
            f"baseline "
            f"{scale_baseline['requests_per_wall_second']:,.0f} req/s"
        )
    if problems:
        print("PERF REGRESSION:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"perf gate ok ({noise_note}): {speed_note}{scale_note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
