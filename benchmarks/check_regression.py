"""Perf-regression gate over the decode fast-forwarding speedups.

Compares a fresh ``bench_speed.py`` result against the committed
``BENCH_speed.json`` baseline so the PR-4 fast-forward wins cannot rot
silently. The gated metric is the **fig09-class aggregate speedup**
(the number PR 4's acceptance bar targets): it must stay within
``--tolerance`` (default 30%) of the baseline. Per-case speedups get a
looser ``--case-tolerance`` backstop — individual cases are noisy on
shared CI runners (best-of-1 timings at ``--quick`` scale swing ±25%
run to run), while a case losing *half* its speedup is rot, not noise.

Compare like scale with like scale: quick runs against the committed
``BENCH_speed_quick.json``, full runs (nightly) against the full-scale
``BENCH_speed.json`` — quick and full speedups differ systematically,
and a cross-scale comparison would eat most of the tolerance before
any real regression. Case names match between any two runs except the
cluster case, which encodes its fleet size and is simply skipped when
absent from the baseline.

The day-in-the-life cluster benchmark (``bench_scale.py``) is gated
the same way when its fresh JSON is supplied: the measured
requests-per-wall-second must stay within ``--scale-tolerance`` of the
committed ``BENCH_scale_quick.json`` baseline — wall-clock throughput
on shared runners is noisier than a speedup *ratio* (no in-process
control run to divide by), hence the looser default.

Usage (the CI bench job)::

    python benchmarks/bench_speed.py --quick --output fresh.json
    python benchmarks/bench_scale.py --quick --output fresh_scale.json
    python benchmarks/check_regression.py \
        --baseline BENCH_speed_quick.json --fresh fresh.json \
        --scale-baseline BENCH_scale_quick.json \
        --scale-fresh fresh_scale.json
"""

from __future__ import annotations

import argparse
import json
import sys


def check(
    baseline: dict,
    fresh: dict,
    tolerance: float,
    case_tolerance: float,
) -> list:
    """Returns the list of human-readable regression findings."""
    problems = []
    base_agg = baseline["fig09_class_speedup"]
    fresh_agg = fresh["fig09_class_speedup"]
    floor = (1.0 - tolerance) * base_agg
    if fresh_agg < floor:
        problems.append(
            f"fig09-class aggregate speedup regressed: {fresh_agg:.2f}x "
            f"vs baseline {base_agg:.2f}x (floor {floor:.2f}x at "
            f"{tolerance:.0%} tolerance)"
        )
    base_cases = {c["case"]: c["speedup"] for c in baseline["cases"]}
    for case in fresh["cases"]:
        name = case["case"]
        if name not in base_cases:
            continue  # e.g. the fleet-size-suffixed cluster case
        case_floor = (1.0 - case_tolerance) * base_cases[name]
        if case["speedup"] < case_floor:
            problems.append(
                f"{name}: speedup {case['speedup']:.2f}x vs baseline "
                f"{base_cases[name]:.2f}x (floor {case_floor:.2f}x at "
                f"{case_tolerance:.0%} tolerance)"
            )
    return problems


def check_scale(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Gate the day-in-the-life benchmark's wall-clock throughput."""
    problems = []
    if baseline.get("quick") != fresh.get("quick"):
        problems.append(
            "bench_scale baseline and fresh run are different scales "
            f"(baseline quick={baseline.get('quick')}, "
            f"fresh quick={fresh.get('quick')})"
        )
        return problems
    base = baseline["requests_per_wall_second"]
    current = fresh["requests_per_wall_second"]
    floor = (1.0 - tolerance) * base
    if current < floor:
        problems.append(
            f"bench_scale throughput regressed: {current:,.0f} req/s "
            f"vs baseline {base:,.0f} req/s (floor {floor:,.0f} at "
            f"{tolerance:.0%} tolerance)"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default="BENCH_speed.json",
        help="committed baseline JSON",
    )
    parser.add_argument(
        "--fresh",
        default=None,
        help="freshly measured bench_speed JSON (omit to skip the gate)",
    )
    parser.add_argument(
        "--scale-baseline",
        default="BENCH_scale_quick.json",
        help="committed bench_scale baseline JSON",
    )
    parser.add_argument(
        "--scale-fresh",
        default=None,
        help="freshly measured bench_scale JSON (omit to skip the gate)",
    )
    parser.add_argument(
        "--scale-tolerance",
        type=float,
        default=0.50,
        help="allowed fractional loss of bench_scale throughput",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional loss of the aggregate speedup",
    )
    parser.add_argument(
        "--case-tolerance",
        type=float,
        default=0.50,
        help="allowed fractional loss of any single case's speedup",
    )
    args = parser.parse_args(argv)
    if args.fresh is None and args.scale_fresh is None:
        parser.error("nothing to gate: pass --fresh and/or --scale-fresh")
    problems = []
    speed_note = "no speed run supplied"
    if args.fresh is not None:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        with open(args.fresh) as handle:
            fresh = json.load(handle)
        problems += check(
            baseline, fresh, args.tolerance, args.case_tolerance
        )
        speed_note = (
            f"aggregate {fresh['fig09_class_speedup']:.2f}x vs "
            f"baseline {baseline['fig09_class_speedup']:.2f}x "
            f"({len(fresh['cases'])} cases)"
        )
    scale_note = ""
    if args.scale_fresh is not None:
        with open(args.scale_baseline) as handle:
            scale_baseline = json.load(handle)
        with open(args.scale_fresh) as handle:
            scale_fresh = json.load(handle)
        problems += check_scale(
            scale_baseline, scale_fresh, args.scale_tolerance
        )
        scale_note = (
            f", bench_scale "
            f"{scale_fresh['requests_per_wall_second']:,.0f} req/s vs "
            f"baseline "
            f"{scale_baseline['requests_per_wall_second']:,.0f} req/s"
        )
    if problems:
        print("PERF REGRESSION:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"perf gate ok: {speed_note}{scale_note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
