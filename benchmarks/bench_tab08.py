"""Benchmark regenerating Table 8 (block size vs page-group size & TP)."""

from repro.experiments import tab08_block_sizes as driver
from repro.units import KB, MB


def test_tab08_block_sizes(benchmark):
    rows = benchmark(driver.run)
    print("\nTable 8: KV block size (tokens per page-group)")
    for row in rows:
        cells = " ".join(
            f"{size // 1024}KB:{tokens}" if size < MB else f"2MB:{tokens}"
            for size, tokens in sorted(row.block_size.items())
        )
        print(f"  {row.model:>12} TP-{row.tp_degree}: {cells}")
    by_key = {(r.model, r.tp_degree): r.block_size for r in rows}
    assert by_key[("Yi-6B", 1)][64 * KB] == 64
    assert by_key[("Yi-6B", 1)][2 * MB] == 2048
    assert by_key[("Llama-3-8B", 1)][2 * MB] == 1024
