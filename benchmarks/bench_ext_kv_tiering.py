"""Ablation bench: tiered GPU->CPU KV eviction vs recompute preemption."""

from repro.experiments import ext_kv_tiering as driver


def test_ext_kv_tiering(benchmark):
    rows = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    print("\nPreemption policy: recompute vs tiered")
    for row in rows:
        print(f"  ctx={row.prompt_len:>6}: p99 TTFT speedup "
              f"{row.ttft_speedup:.2f}x ({row.tier_transfers} restores)")
    # Tiered restores demand-page KV back over PCIe instead of paying a
    # quadratic-cost prefill, so waiting requests start sooner — and the
    # advantage grows with context length.
    speedups = [row.ttft_speedup for row in rows]
    assert all(s > 1.0 for s in speedups)
    assert speedups[-1] > speedups[0]
    assert all(row.tier_transfers > 0 for row in rows)
    assert all(
        row.tiered_prefills < row.recompute_prefills for row in rows
    )
