"""Scheduler-policy bench: FCFS vs SLA vs hybrid under bursty load.

Run under pytest (``pytest benchmarks/bench_ext_sched.py``) for the
acceptance assertions, or standalone to emit JSON::

    PYTHONPATH=src python benchmarks/bench_ext_sched.py --output out.json
"""

import dataclasses
import json

from repro.experiments import ext_sched_policy as driver


def _rows():
    return driver.run()


def test_ext_sched_policy(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    print("\nScheduler-policy sweep (chat/doc mixture, bursty arrivals)")
    for row in rows:
        name = row.policy
        if row.token_budget is not None:
            name = f"{row.policy}@{row.token_budget}"
        print(
            f"  {name:>12}: TTFT p99 {row.p99_ttft:7.3f}s "
            f"(chat {row.chat_p99_ttft:7.3f}) mean {row.mean_ttft:6.3f}s "
            f"{row.requests_per_minute:6.1f} req/min"
        )
    by_cell = {(r.policy, r.token_budget): r for r in rows}
    fcfs = by_cell[("fcfs", None)]
    sla = by_cell[("sla", None)]
    hybrids = [r for r in rows if r.policy == "hybrid"]

    # The PR 3 acceptance bar: hybrid batching improves p99 TTFT over
    # FCFS at equal-or-better throughput, at every swept budget.
    for hybrid in hybrids:
        assert hybrid.p99_ttft < fcfs.p99_ttft
        assert hybrid.requests_per_minute >= fcfs.requests_per_minute
    # Mixed batches also lift the interactive class's tail and the
    # average first token.
    for hybrid in hybrids:
        assert hybrid.chat_p99_ttft < fcfs.chat_p99_ttft
        assert hybrid.mean_ttft < fcfs.mean_ttft

    # Deadline scheduling is a different trade: the budgeted chat class
    # collapses its TTFT (admission + prefill priority) while the
    # deadline-less doc class pays — and fleet throughput holds.
    assert sla.chat_p99_ttft < 0.5 * fcfs.chat_p99_ttft
    assert sla.mean_ttft < fcfs.mean_ttft
    assert sla.doc_p99_ttft >= fcfs.doc_p99_ttft
    assert sla.requests_per_minute >= 0.99 * fcfs.requests_per_minute


def test_ext_sched_deterministic(benchmark):
    first = benchmark.pedantic(
        lambda: driver.serve("hybrid", token_budget=2_048),
        rounds=1,
        iterations=1,
    )
    second = driver.serve("hybrid", token_budget=2_048)
    assert first.p99_ttft() == second.p99_ttft()
    assert first.makespan == second.makespan
    assert [r.finish_time for r in first.requests] == [
        r.finish_time for r in second.requests
    ]


def main() -> None:
    """Standalone mode: run the sweep and write it as JSON."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default="sched_bench.json",
        help="path the JSON results are written to",
    )
    args = parser.parse_args()
    rows = _rows()
    payload = {
        "experiment": "ext_sched_policy",
        "requests": driver.REQUESTS,
        "qps": driver.QPS,
        "chat_ttft_budget": driver.CHAT_TTFT_BUDGET,
        "rows": [dataclasses.asdict(row) for row in rows],
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {args.output}: {len(rows)} policy cells")


if __name__ == "__main__":
    main()
