"""Cluster-scale wall-clock benchmark: a day in the life of a fleet.

Replays a one-million-request diurnal trace — arrivals drawn from a
four-phase Markov-modulated Poisson process (night trough, morning
ramp, afternoon plateau, evening peak) — through an elastically
autoscaled fleet of up to 16 replicas with joint-horizon cluster
fast-forwarding on, and asserts the whole simulated day completes in
single-digit minutes of wall clock. This is the scale target the
joint-horizon loop exists for: per-iteration simulation of the same
day is hours, not minutes.

The fleet is decode-bound (the prefix cache is enabled only for the
``cache_aware`` router, which needs trees to probe) and routed, by
default, by the state-aware ``least_outstanding_tokens`` policy: the fast loop
then routes whole arrival windows against *analytic* replica views
(persistent closed-form backlog predictors), which is the windowed
path the analytic router-state replay exists for. ``--router
round_robin`` selects the state-blind variant, which batches the same
windows without any state probes and is correspondingly faster — both
are gated in CI.

Usage::

    python benchmarks/bench_scale.py                   # 1M requests, full budget
    python benchmarks/bench_scale.py --quick           # 20k requests, CI smoke
    python benchmarks/bench_scale.py --router round_robin
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import List

from repro.cluster import ClusterConfig, ClusterEngine
from repro.gpu.spec import A100
from repro.models.shard import ShardedModel
from repro.models.zoo import YI_6B
from repro.serving.engine import EngineConfig
from repro.serving.request import Request
from repro.workloads.arrival import mmpp_arrivals
from repro.workloads.traces import TraceSpec

#: The simulated day: phase arrival rates (requests/second) and mean
#: dwells (seconds). Rates average ~11.6 qps over the cycle, so one
#: million requests span roughly 24 simulated hours.
DAY_RATES = (3.0, 11.5, 14.5, 17.5)
DAY_DWELLS = (21_600.0, 21_600.0, 21_600.0, 21_600.0)

#: Chat-sized prompts and decodes (ShareGPT-like central range).
PROMPT_SPEC = TraceSpec(low=128, high=2_048, mean=512)
DECODE_SPEC = TraceSpec(low=16, high=512, mean=128)

MAX_BATCH = 8
MIN_REPLICAS = 2
MAX_REPLICAS = 16
COLD_START_SECONDS = 2.0
WARMUP_SECONDS = 1.0
SCALE_DECIDE_INTERVAL = 5.0
SLO_TTFT = 8.0
SLO_WINDOW_SECONDS = 60.0
QUEUE_HIGH_WATERMARK = 16_384
QUEUE_LOW_WATERMARK = 2_048

FULL_COUNT = 1_000_000
QUICK_COUNT = 20_000

#: Routing policies the benchmark knows how to drive. The state-aware
#: default exercises the analytic router-state replay; ``cache_aware``
#: adds frozen-tree prefix probes on top (its fleet runs with the
#: prefix cache enabled — probes mostly miss on the chat-shaped day,
#: but the full windowed probe path executes); ``round_robin`` is the
#: state-blind window-batching regime PR 8 targeted.
ROUTERS = ("least_outstanding_tokens", "cache_aware", "round_robin")
DEFAULT_ROUTER = "least_outstanding_tokens"

#: Wall-clock ceilings the run must beat (seconds), per router. The
#: state-aware day costs more wall than the state-blind one (every
#: window still pays analytic backlog probes and predictor rebuilds at
#: arrival instants), so each regime carries its own honest budget —
#: ~40% headroom over the measured reference runs (488 s state-aware,
#: 343 s round-robin), the same margin the previous 600 s / 413 s pin
#: carried.
FULL_BUDGET_SECONDS = {
    "least_outstanding_tokens": 650.0,
    "cache_aware": 650.0,
    "round_robin": 480.0,
}
QUICK_BUDGET_SECONDS = 120.0

TRACE_SEED = 60_251
ARRIVAL_SEED = 60_257


def day_trace(count: int, dwell_scale: float = 1.0) -> List[Request]:
    """``count`` diurnal-MMPP requests with sampled chat-sized shapes.

    ``dwell_scale`` compresses the day: the quick run shrinks each
    phase so its 20k requests still sweep one full diurnal cycle
    (rates — and thus fleet pressure — are unchanged).
    """
    arrivals = mmpp_arrivals(
        rates=DAY_RATES,
        dwells=tuple(dwell * dwell_scale for dwell in DAY_DWELLS),
        count=count,
        seed=ARRIVAL_SEED,
    )
    rng = random.Random(TRACE_SEED)
    return [
        Request(
            request_id=f"day-{index:07d}",
            prompt_len=PROMPT_SPEC.sample(rng),
            max_new_tokens=DECODE_SPEC.sample(rng),
            arrival_time=arrival,
        )
        for index, arrival in enumerate(arrivals)
    ]


def build_fleet(router: str = DEFAULT_ROUTER) -> ClusterEngine:
    """An elastic Yi-6B fleet, 2 to 16 replicas, routed by ``router``.

    ``cache_aware`` is the one router that needs radix trees to probe,
    so it (and only it) runs with the prefix cache enabled — the
    chat-shaped day has essentially no shared prefixes, so the probes
    mostly miss, but the full windowed frozen-tree probe path executes.
    """
    engine = EngineConfig(
        shard=ShardedModel(YI_6B, 1),
        gpu=A100,
        memory_backend="vattention",
        max_batch_size=MAX_BATCH,
        enable_prefix_cache=(router == "cache_aware"),
    )
    return ClusterEngine(
        ClusterConfig(
            engine=engine,
            n_replicas=MIN_REPLICAS,
            routing_policy=router,
            autoscaler="queue_depth",
            min_replicas=MIN_REPLICAS,
            max_replicas=MAX_REPLICAS,
            cold_start_seconds=COLD_START_SECONDS,
            warmup_seconds=WARMUP_SECONDS,
            scale_decide_interval=SCALE_DECIDE_INTERVAL,
            slo_ttft=SLO_TTFT,
            slo_window_seconds=SLO_WINDOW_SECONDS,
            queue_high_watermark=QUEUE_HIGH_WATERMARK,
            queue_low_watermark=QUEUE_LOW_WATERMARK,
            label="day_in_the_life",
        )
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced scale for CI (20k requests)",
    )
    parser.add_argument(
        "--output", default="BENCH_scale.json", help="result JSON path"
    )
    parser.add_argument(
        "--router",
        choices=ROUTERS,
        default=DEFAULT_ROUTER,
        help="fleet routing policy (state-aware by default)",
    )
    args = parser.parse_args(argv)

    count = QUICK_COUNT if args.quick else FULL_COUNT
    budget = (
        QUICK_BUDGET_SECONDS
        if args.quick
        else FULL_BUDGET_SECONDS[args.router]
    )

    print(
        f"day-in-the-life cluster bench "
        f"({'quick' if args.quick else 'full'} scale, {count:,} requests, "
        f"{args.router} routing)"
    )
    started = time.perf_counter()
    dwell_scale = QUICK_COUNT / FULL_COUNT if args.quick else 1.0
    trace = day_trace(count, dwell_scale=dwell_scale)
    trace_seconds = time.perf_counter() - started

    cluster = build_fleet(args.router)
    cluster.submit(trace)
    started = time.perf_counter()
    report = cluster.run()
    wall_seconds = time.perf_counter() - started

    finished = len(report.finished_records)
    assert finished == count, (
        f"only {finished:,} of {count:,} requests finished"
    )

    sim_seconds = report.makespan
    payload = {
        "benchmark": "bench_scale",
        "quick": args.quick,
        "router": args.router,
        "count": count,
        "trace_seconds": round(trace_seconds, 3),
        "wall_seconds": round(wall_seconds, 3),
        "sim_seconds": round(sim_seconds, 3),
        "sim_hours": round(sim_seconds / 3600.0, 3),
        "requests_per_wall_second": round(count / wall_seconds, 1),
        "speed_ratio": round(sim_seconds / wall_seconds, 1),
        "peak_serving": report.peak_serving,
        "replica_seconds": round(report.replica_seconds, 1),
        "scale_events": len(report.scale_events),
        "p99_ttft": round(report.p99_ttft(), 4),
        "budget_seconds": budget,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    print(
        f"  simulated {sim_seconds / 3600.0:6.2f}h of fleet time in "
        f"{wall_seconds:7.1f}s wall ({count / wall_seconds:,.0f} req/s, "
        f"{sim_seconds / wall_seconds:,.0f}x real time)"
    )
    print(
        f"  peak {report.peak_serving} serving replicas, "
        f"{len(report.scale_events)} scale events, "
        f"p99 TTFT {report.p99_ttft():.2f}s"
    )
    print(f"wrote {args.output}")

    assert wall_seconds < budget, (
        f"day-in-the-life run took {wall_seconds:.1f}s; "
        f"budget is {budget:.0f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
