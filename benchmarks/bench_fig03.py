"""Benchmark regenerating Figure 3 (vLLM kernel block-size sensitivity)."""

from repro.experiments import fig03_block_size_sensitivity as driver


def test_fig03_block_size_sensitivity(benchmark):
    rows = benchmark(driver.run)
    print("\nFigure 3: vLLM paged decode latency vs block size")
    for row in rows:
        print(
            f"  {row.batch_size:>2}*16K: "
            + " ".join(f"bs{b}={row.normalized(b):.2f}x" for b in (16, 32, 64, 128))
        )
    # Paper: block 128 is ~1.9x slower than block 16 at every point.
    assert all(abs(r.normalized(128) - 1.90) < 0.1 for r in rows)
