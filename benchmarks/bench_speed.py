"""Wall-clock benchmark of the event-driven simulation core.

Measures decode-heavy serving runs with decode fast-forwarding on vs
off (``repro.sim``; everything else identical, reports bit-identical —
the benchmark verifies the simulated end state matches before trusting
a timing) and writes the results to ``BENCH_speed.json``, seeding the
repo's performance trajectory.

Cases (the decode-heavy end of the catalogue):

* ``fig09_offline_<system>`` — offline throughput on the
  arXiv-Summarization trace, one run per paper system.
* ``fig10_online`` — online Poisson load on FA2_vAttention.
* ``ext_cluster_router_4x`` — a 4-replica cache-aware fleet (2 in
  ``--quick``) on the decode-heavy variant of the cluster trace; this
  is the case the joint-horizon cluster loop is measured on.

Usage::

    python benchmarks/bench_speed.py            # full, asserts >= 5x
    python benchmarks/bench_speed.py --quick    # CI smoke: on beats off

The full run asserts the fig09-class aggregate speedup meets the 5x
target and the cluster case meets the 7x floor (the fleet-vectorized
loop measures ~8.5x locally; its analytic ceiling on this case is
~10x — the fast side's floor is the shared per-iteration cost of the
96 prefills, singleton stretches, and routing the slow side also
pays); ``--quick`` (CI's bench/speed job) only asserts that
fast-forwarding beats the per-iteration loop on the decode-heavy
case, keeping the job robust on noisy shared runners.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List

import repro.serving.engine as engine_module
from repro.experiments.common import paper_engine
from repro.experiments.ext_cluster_router import build_cluster, cluster_trace
from repro.models.zoo import YI_6B
from repro.workloads.arrival import poisson_arrivals
from repro.workloads.traces import TraceSpec, arxiv_offline_trace, fixed_trace

FIG09_SYSTEMS = ("FA2_Paged", "FI_Paged", "FA2_vAttention")

#: Decode lengths of the cluster wall-clock case. The catalogue trace's
#: chat-sized decodes (mean 128) keep the experiment fast, but the
#: wall-clock benchmark measures the decode-heavy regime the joint
#: horizon exists for, so it replays the same trace with the decode
#: distribution scaled 3x (still inside the SLO-relevant range).
CLUSTER_BENCH_DECODE = TraceSpec(low=16, high=1_536, mean=384)


def _fig09_engine(system: str, count: int):
    engine = paper_engine(system, YI_6B, max_batch_size=48)
    engine.submit(arxiv_offline_trace(count=count, seed=2405))
    return engine


def _fig10_engine(count: int):
    engine = paper_engine("FA2_vAttention", YI_6B, max_batch_size=32)
    engine.submit(
        fixed_trace(
            count=count,
            prompt_len=4_096,
            max_new_tokens=256,
            arrivals=poisson_arrivals(qps=1.5, count=count, seed=4437),
        )
    )
    return engine


def _run_engine(build: Callable[[], object], fast_forward: bool):
    engine_module.DEFAULT_FAST_FORWARD = fast_forward
    engine = build()
    started = time.perf_counter()
    report = engine.run()
    elapsed = time.perf_counter() - started
    fingerprint = (
        repr(report.end_time),
        len(report.finished_requests),
        report.metrics.iteration_count(),
    )
    return elapsed, fingerprint, report


def _run_cluster(build: Callable[[], object], fast_forward: bool):
    engine_module.DEFAULT_FAST_FORWARD = fast_forward
    cluster = build()
    started = time.perf_counter()
    report = cluster.run()
    elapsed = time.perf_counter() - started
    fingerprint = (
        repr(report.end_time),
        len(report.finished_records),
        tuple(repr(latency) for latency in sorted(report.e2e_latencies())),
    )
    return elapsed, fingerprint, report


def measure(
    name: str,
    build: Callable[[], object],
    runner: Callable,
    repeats: int,
) -> Dict:
    """Best-of-N wall-clock for both modes, with end-state verification."""
    fast_times: List[float] = []
    slow_times: List[float] = []
    fast_state = slow_state = None
    for _ in range(repeats):
        elapsed, fast_state, _ = runner(build, True)
        fast_times.append(elapsed)
        elapsed, slow_state, _ = runner(build, False)
        slow_times.append(elapsed)
    if fast_state != slow_state:
        raise AssertionError(
            f"{name}: fast-forwarded end state diverged from the "
            f"per-iteration loop: {fast_state} != {slow_state}"
        )
    fast = min(fast_times)
    slow = min(slow_times)
    row = {
        "case": name,
        "fast_seconds": round(fast, 6),
        "slow_seconds": round(slow, 6),
        "speedup": round(slow / fast, 3),
    }
    print(
        f"  {name:<28} fast {fast * 1e3:8.1f}ms   "
        f"slow {slow * 1e3:8.1f}ms   {slow / fast:5.2f}x"
    )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced scale for CI: asserts on-beats-off only",
    )
    parser.add_argument(
        "--output", default="BENCH_speed.json", help="result JSON path"
    )
    args = parser.parse_args(argv)

    fig09_count = 40 if args.quick else 120
    fig10_count = 32 if args.quick else 96
    cluster_replicas = 2 if args.quick else 4
    cluster_count = 24 if args.quick else 96
    repeats = 1 if args.quick else 2

    print(
        f"decode fast-forwarding wall-clock "
        f"({'quick' if args.quick else 'full'} scale)"
    )
    rows: List[Dict] = []
    for system in FIG09_SYSTEMS:
        rows.append(
            measure(
                f"fig09_offline_{system}",
                lambda system=system: _fig09_engine(system, fig09_count),
                _run_engine,
                repeats,
            )
        )
    rows.append(
        measure(
            "fig10_online",
            lambda: _fig10_engine(fig10_count),
            _run_engine,
            repeats,
        )
    )

    def build_fleet():
        cluster = build_cluster(cluster_replicas, "cache_aware")
        cluster.submit(
            cluster_trace(
                count=cluster_count,
                sharing_factor=4,
                qps=10.0,
                decode_spec=CLUSTER_BENCH_DECODE,
            )
        )
        return cluster

    cluster_row = measure(
        f"ext_cluster_router_{cluster_replicas}x",
        build_fleet,
        _run_cluster,
        repeats,
    )
    rows.append(cluster_row)

    fig09_rows = [r for r in rows if r["case"].startswith("fig09")]
    fig09_fast = sum(r["fast_seconds"] for r in fig09_rows)
    fig09_slow = sum(r["slow_seconds"] for r in fig09_rows)
    fig09_speedup = fig09_slow / fig09_fast
    cluster_speedup = cluster_row["speedup"]
    payload = {
        "benchmark": "bench_speed",
        "quick": args.quick,
        "cases": rows,
        "fig09_class_speedup": round(fig09_speedup, 3),
        "cluster_speedup": cluster_speedup,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    print(f"fig09-class aggregate speedup: {fig09_speedup:.2f}x")
    print(f"cluster speedup: {cluster_speedup:.2f}x")
    print(f"wrote {args.output}")

    # The decode-heavy case must always win with fast-forwarding on.
    decode_heavy = max(fig09_rows, key=lambda r: r["speedup"])
    assert decode_heavy["speedup"] > 1.0, (
        f"fast-forwarding lost on {decode_heavy['case']}: "
        f"{decode_heavy['speedup']}x"
    )
    assert cluster_row["speedup"] > 1.0, (
        f"fast-forwarding lost on {cluster_row['case']}: "
        f"{cluster_row['speedup']}x"
    )
    if not args.quick:
        assert fig09_speedup >= 5.0, (
            f"fig09-class speedup {fig09_speedup:.2f}x misses the 5x target"
        )
        assert cluster_speedup >= 7.0, (
            f"cluster speedup {cluster_speedup:.2f}x misses the 7x target"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
