"""Ablation bench: prefix KV de-duplication via page aliasing (S8.1)."""

from repro.experiments import ext_prefix_sharing as driver
from repro.units import KB, MB


def test_ext_prefix_sharing(benchmark):
    rows = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    print("\nPrefix sharing: physical memory for 16 requests with a "
          "shared 8K prefix")
    for row in rows:
        name = (
            f"{row.page_group_size // KB}KB"
            if row.page_group_size < MB
            else "2MB"
        )
        print(f"  {name:>6}: {row.reduction:.0%} physical memory saved, "
              f"{row.aliased_rows} rows aliased")
    # The shared prefix dominates each request's footprint, so most of
    # the physical memory dedupes away at every granularity.
    for row in rows:
        assert row.reduction > 0.5
        assert row.physical_with_sharing < row.physical_without_sharing