"""Ablation bench: the unified-memory strawman vs vAttention (S8.1)."""

from repro.experiments import ext_uvm_limitations as driver
from repro.units import GB


def test_ext_uvm_limitations(benchmark):
    rows = benchmark.pedantic(
        lambda: driver.run(request_count=200),
        rounds=1,
        iterations=1,
    )
    by_backend = {row.backend: row for row in rows}
    print("\nUVM vs vAttention on a churning chat trace")
    for row in rows:
        note = " (died: memory unreclaimable)" if row.died_of_oom else ""
        print(f"  {row.backend:>10}: {row.finished} finished, committed "
              f"{row.final_committed / GB:.2f}GB at end{note}")
    uvm = by_backend["uvm"]
    vattn = by_backend["vattention"]
    # vAttention completes the whole trace; UVM strands memory and
    # either dies or finishes fewer requests on the same budget.
    assert vattn.finished == 200
    assert uvm.finished < vattn.finished
    assert uvm.final_committed >= vattn.final_committed