"""Benchmark regenerating Table 7 (decode kernel latency per iteration)."""

from repro.experiments import tab07_decode_kernel_latency as driver


def test_tab07_decode_kernel_latency(benchmark):
    rows = benchmark(driver.run)
    print("\nTable 7: decode attention kernel latency (ms)")
    for row in rows:
        cells = " ".join(
            f"{name}={ms:.1f}" for name, ms in row.latency_ms.items()
        )
        print(f"  {row.model:>12} BS={row.batch_size:>2}: {cells}")
    yi6b_16 = next(
        r for r in rows if r.model == "Yi-6B" and r.batch_size == 16
    )
    # Paper: vLLM 32.3ms vs FA2_vAttention 11.3ms (2.8x).
    assert 2.6 < yi6b_16.vllm_gap() < 3.0
