"""Benchmark regenerating Figure 11 (FA3 portability on H100)."""

from repro.experiments import fig11_fa3_portability as driver


def test_fig11_fa3_portability(benchmark):
    rows = benchmark.pedantic(
        lambda: driver.run(request_count=60),
        rounds=1,
        iterations=1,
    )
    print("\nFigure 11: offline throughput on H100 (requests/minute)")
    for row in rows:
        cells = " ".join(
            f"{name}={rpm:.2f}" for name, rpm in row.requests_per_minute.items()
        )
        print(f"  {row.model:>12}: {cells}")
        print(
            f"    FA3 gain: {row.fa3_gain_over_paged():.2f}x over FA2_Paged,"
            f" {row.fa3_gain_over_vattention():.2f}x over FA2_vAttention"
        )
    # Paper: FA3_vAttention is 1.26-1.5x over FA2_Paged.
    for row in rows:
        assert 1.2 < row.fa3_gain_over_paged() < 1.7
        assert row.fa3_gain_over_vattention() > 1.1
