"""Benchmark regenerating Figure 15 (max batch size vs page-group size).

Yi-6B only and 400 requests to keep the bench fast; ``driver.run()``
covers all three models at the full trace length.
"""

from repro.experiments import fig15_max_batch_size as driver
from repro.models.zoo import YI_6B
from repro.units import KB, MB


def _sweep():
    return {
        size: driver.run_one(YI_6B, size, request_count=400)
        for size in (2 * MB, 256 * KB, 128 * KB, 64 * KB)
    }


def test_fig15_max_batch_size(benchmark):
    peaks = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print("\nFigure 15: max batch by page-group size (Yi-6B, OpenChat)")
    for size, peak in sorted(peaks.items()):
        print(f"  {size // 1024:>5}KB: {peak}")
    gain = peaks[64 * KB] / peaks[2 * MB]
    print(f"  64KB/2MB gain: {gain:.2f}x (paper: ~1.28x)")
    # Smaller page-groups monotonically admit larger batches.
    assert peaks[64 * KB] >= peaks[128 * KB] >= peaks[256 * KB] >= peaks[2 * MB]
    assert gain > 1.1
