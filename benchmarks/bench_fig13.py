"""Benchmark regenerating Figure 13 (deferred reclamation ablation)."""

from repro.experiments import fig13_deferred_reclamation as driver


def test_fig13_deferred_reclamation(benchmark):
    rows = benchmark(driver.run)
    print("\nFigure 13: 16K prefill under allocation strategies")
    for row in rows:
        print(
            f"  {row.model:>12}: 64KB sync {row.overhead_64kb:.2f}x, "
            f"2MB sync {row.overhead_2mb:.2f}x, "
            f"deferred {row.overhead_deferred:.2f}x"
        )
    # Paper: up to 1.15x (64KB), up to 1.03x (2MB), 1.00x deferred.
    assert max(r.overhead_64kb for r in rows) > 1.10
    assert all(r.overhead_2mb < 1.05 for r in rows)
    assert all(abs(r.overhead_deferred - 1.0) < 1e-6 for r in rows)
