"""Benchmark regenerating Figure 7 (prefill throughput, 4 back-ends)."""

from repro.experiments import fig07_prefill_throughput as driver


def test_fig07_prefill_throughput(benchmark):
    rows = benchmark(driver.run)
    print("\nFigure 7: prefill throughput (tokens/s)")
    for row in rows:
        if row.context_len in (1_024, 16_384, 196_608):
            cells = " ".join(
                f"{name}={tput:.0f}" for name, tput in row.throughput.items()
            )
            print(f"  {row.model:>12} ctx={row.context_len:>6}: {cells}")
    # Paper: at 192K, FA2_vAttention outperforms FA2_Paged by ~1.24-1.26x.
    long_rows = [r for r in rows if r.context_len == 196_608]
    for row in long_rows:
        assert 1.15 < row.speedup("FA2_vAttention", "FA2_Paged") < 1.35
