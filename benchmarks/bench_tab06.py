"""Benchmark regenerating Table 6 (prefill completion/attention times)."""

from repro.experiments import tab06_prefill_times as driver


def test_tab06_prefill_times(benchmark):
    rows = benchmark(driver.run)
    print("\nTable 6: prefill completion (attention) seconds")
    for row in rows:
        cells = " ".join(
            f"{s}={row.completion(s):.1f}({row.attention(s):.1f})"
            for s in ("FA2_Paged", "FA2_vAttention")
        )
        print(f"  {row.model:>12} ctx={row.context_len // 1024}K: {cells}")
    yi6b_192k = next(
        r for r in rows if r.model == "Yi-6B" and r.context_len == 196_608
    )
    # Paper anchor: 81.5s paged vs 64.6s vAttention.
    assert abs(yi6b_192k.completion("FA2_Paged") - 81.5) / 81.5 < 0.1
    assert abs(yi6b_192k.completion("FA2_vAttention") - 64.6) / 64.6 < 0.1
