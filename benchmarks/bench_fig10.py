"""Benchmark regenerating Figure 10 (online latency CDFs).

One representative cell per model (the paper's full grid is 18 runs);
reduced to 100 requests. Use ``driver.run()`` for the complete grid.
"""

from repro.experiments import fig10_online_latency as driver
from repro.models.zoo import YI_6B


def _run_pair():
    cells = {}
    for system in ("FA2_Paged", "FA2_vAttention"):
        cells[system] = driver.run_one(
            YI_6B, qps=0.25, system=system, request_count=100
        )
    return cells


def test_fig10_online_latency(benchmark):
    cells = benchmark.pedantic(_run_pair, rounds=1, iterations=1)
    paged = cells["FA2_Paged"]
    vattn = cells["FA2_vAttention"]
    print("\nFigure 10: online request latency (Yi-6B, QPS 0.25)")
    print(f"  FA2_Paged      median: {paged.median_latency:8.1f}s")
    print(f"  FA2_vAttention median: {vattn.median_latency:8.1f}s")
    reduction = 1 - vattn.median_latency / paged.median_latency
    print(f"  median reduction: {reduction:.0%} (paper: up to 42%)")
    # vAttention's CDF sits left of the paged baseline.
    assert vattn.median_latency < paged.median_latency
    assert reduction > 0.1
