"""Run every extension benchmark and merge the results into one JSON.

Each ``bench_ext_*.py`` under ``benchmarks/`` doubles as a standalone
script that writes its sweep as JSON via ``--output``. This driver
discovers them — plus ``bench_scale.py`` at its ``--quick`` CI scale —
runs each in a subprocess (so their argparse ``main()`` entry points
execute exactly as CI used to invoke them one by one), and merges the
payloads into a single ``BENCH_all.json`` keyed by benchmark name —
the one artifact the CI ``bench`` job uploads::

    PYTHONPATH=src python benchmarks/run_all.py --output BENCH_all.json
    PYTHONPATH=src python benchmarks/run_all.py --only cluster autoscale

A benchmark that exits nonzero fails the whole run (after every other
benchmark has still been attempted, so one regression does not hide
another); its entry in the merged JSON records the failure.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List

BENCH_DIR = Path(__file__).resolve().parent


def discover() -> List[Path]:
    """Every extension benchmark script, in name order, plus the
    cluster-scale benchmark (run at its ``--quick`` CI scale)."""
    return sorted(BENCH_DIR.glob("bench_ext_*.py")) + [
        BENCH_DIR / "bench_scale.py"
    ]


def extra_args(path: Path) -> List[str]:
    """Per-benchmark flags for the merged run: the day-in-the-life
    benchmark runs its 20k-request smoke here; the full million-request
    day is the nightly job's."""
    return ["--quick"] if path.stem == "bench_scale" else []


def bench_name(path: Path) -> str:
    """``bench_ext_cluster.py`` -> ``ext_cluster``."""
    return path.stem.removeprefix("bench_")


def run_one(path: Path) -> Dict:
    """Run one benchmark's standalone mode; returns its merged entry."""
    with tempfile.TemporaryDirectory() as tmp:
        output = Path(tmp) / "result.json"
        env = dict(os.environ)
        src = str(BENCH_DIR.parent / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        proc = subprocess.run(
            [sys.executable, str(path), "--output", str(output)]
            + extra_args(path),
            capture_output=True,
            text=True,
            env=env,
        )
        if proc.returncode != 0:
            return {
                "ok": False,
                "returncode": proc.returncode,
                # The tail is where asserts and tracebacks land.
                "stderr_tail": proc.stderr[-2000:],
            }
        if not output.exists():
            # Exit 0 with no JSON written is a regression in the
            # benchmark's standalone mode, not a pass: recording it as
            # ok would silently drop its data from the artifact.
            return {
                "ok": False,
                "returncode": 0,
                "stderr_tail": "benchmark exited 0 without writing "
                "its --output JSON",
            }
        with open(output) as handle:
            return {"ok": True, "result": json.load(handle)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_all.json", help="merged JSON path"
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="substring filters on benchmark names (default: all)",
    )
    args = parser.parse_args(argv)

    scripts = discover()
    if args.only:
        scripts = [
            path
            for path in scripts
            if any(pattern in path.stem for pattern in args.only)
        ]
    if not scripts:
        print("no benchmarks matched", file=sys.stderr)
        return 2

    merged: Dict[str, Dict] = {}
    failures: List[str] = []
    for path in scripts:
        name = bench_name(path)
        print(f"== {name} ({path.name})", flush=True)
        entry = run_one(path)
        merged[name] = entry
        if entry["ok"]:
            print("   ok")
        else:
            failures.append(name)
            print(f"   FAILED (exit {entry['returncode']})")
            print(entry["stderr_tail"], file=sys.stderr)

    with open(args.output, "w") as handle:
        json.dump(
            {"benchmark": "run_all", "results": merged}, handle, indent=1
        )
        handle.write("\n")
    print(
        f"wrote {args.output}: {len(merged)} benchmarks, "
        f"{len(failures)} failed"
    )
    if failures:
        print(f"failed: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
