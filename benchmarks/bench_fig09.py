"""Benchmark regenerating Figure 9 (offline end-to-end throughput).

Reduced to 80 requests per run (the paper uses 427; its own artifact
defaults to 100 for quick runs). Pass request_count=427 for full scale.
"""

from repro.experiments import fig09_offline_throughput as driver


def test_fig09_offline_throughput(benchmark):
    rows = benchmark.pedantic(
        lambda: driver.run(request_count=80),
        rounds=1,
        iterations=1,
    )
    print("\nFigure 9: offline throughput (requests/minute)")
    for row in rows:
        cells = " ".join(
            f"{name}={rpm:.2f}" for name, rpm in row.requests_per_minute.items()
        )
        print(f"  {row.model:>12}: {cells}")
        print(
            f"    vAttention speedup: {row.speedup('FA2_vAttention', 'FA2_Paged'):.2f}x"
            f" over FA2_Paged, {row.speedup('FA2_vAttention', 'FI_Paged'):.2f}x"
            f" over FI_Paged"
        )
    # Paper: 1.13-1.18x over FA2_Paged, 1.14-1.23x over FI_Paged.
    for row in rows:
        assert row.speedup("FA2_vAttention", "FA2_Paged") > 1.08
        assert row.speedup("FA2_vAttention", "FI_Paged") > 1.05
