"""Benchmark regenerating Figure 8 (decode throughput, full engine).

Reduced to 100 decode iterations per point (the paper uses 400) so the
bench suite stays fast; pass more through ``driver.run`` for full scale.
"""

from repro.experiments import fig08_decode_throughput as driver


def test_fig08_decode_throughput(benchmark):
    rows = benchmark.pedantic(
        lambda: driver.run(decode_iterations=100),
        rounds=1,
        iterations=1,
    )
    print("\nFigure 8: decode throughput (tokens/s), ctx 16K")
    for row in rows:
        value = (
            f"{row.tokens_per_second:.0f}"
            if row.tokens_per_second is not None
            else "OOM"
        )
        print(f"  {row.model:>12} {row.system:>15} B={row.batch_size:>2}: {value}")
    # Paper headline: FA2_vAttention up to ~1.99x over vLLM (Yi-6B).
    yi6b = driver.max_speedup_over_vllm(rows, "Yi-6B")
    assert 1.6 < yi6b < 2.5
    # Yi-34B runs out of memory at batch 32, like the paper.
    oom = [
        r for r in rows
        if r.model == "Yi-34B" and r.batch_size == 32
    ]
    assert all(r.tokens_per_second is None for r in oom)
