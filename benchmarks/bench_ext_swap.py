"""Ablation bench: swap-to-host vs recompute preemption (S5.3.3)."""

from repro.experiments import ext_swap_policy as driver


def test_ext_swap_policy(benchmark):
    rows = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    print("\nPreemption policy: recompute vs swap")
    for row in rows:
        print(f"  ctx={row.prompt_len:>6}: swap speedup {row.speedup:.2f}x "
              f"({row.recompute_prefills - row.swap_prefills} prefills avoided)")
    # Swap never recomputes prefills, and its advantage grows with
    # context length (recompute cost is quadratic, PCIe cost linear).
    speedups = [row.speedup for row in rows]
    assert all(s >= 1.0 for s in speedups)
    assert speedups[-1] > speedups[0]
    assert all(row.swap_prefills < row.recompute_prefills for row in rows)