"""Cluster bench: routing policies x replicas x sharing, + disaggregation.

Run under pytest (``pytest benchmarks/bench_ext_cluster.py``) for the
acceptance assertions, or standalone to emit the JSON the CI workflow
uploads as an artifact::

    PYTHONPATH=src python benchmarks/bench_ext_cluster.py --output out.json
"""

import dataclasses
import json
import time

# Shares the decode-heavy trace variant with the wall-clock benchmark
# so both report the same cluster fast-loop regime.
from bench_speed import CLUSTER_BENCH_DECODE

import repro.serving.engine as engine_module
from repro.experiments import ext_cluster_router as driver
from repro.units import GB

REPLICA_COUNTS = (2, 4)
SHARING_FACTORS = (1, 8)

#: The joint-horizon cluster loop's acceptance bar on the decode-heavy
#: 4-replica cell (the ``ext_cluster_router_4x`` case of bench_speed).
FAST_LOOP_TARGET = 5.0


def _sweeps():
    rows = driver.run(
        replica_counts=REPLICA_COUNTS, sharing_factors=SHARING_FACTORS
    )
    disagg = driver.run_disaggregated()
    return rows, disagg


def measure_fast_loop(repeats: int = 2) -> dict:
    """Best-of-N wall clock of the decode-heavy 4-replica cell with the
    joint-horizon fast loop on vs off, end states verified equal."""

    def run_once(fast_forward):
        previous = engine_module.DEFAULT_FAST_FORWARD
        engine_module.DEFAULT_FAST_FORWARD = fast_forward
        try:
            cluster = driver.build_cluster(4, "cache_aware")
            cluster.submit(
                driver.cluster_trace(
                    count=96,
                    sharing_factor=4,
                    qps=10.0,
                    decode_spec=CLUSTER_BENCH_DECODE,
                )
            )
            started = time.perf_counter()
            report = cluster.run()
            elapsed = time.perf_counter() - started
        finally:
            engine_module.DEFAULT_FAST_FORWARD = previous
        state = (
            repr(report.end_time),
            len(report.finished_records),
            tuple(repr(lat) for lat in sorted(report.e2e_latencies())),
        )
        return elapsed, state

    fast_times, slow_times = [], []
    fast_state = slow_state = None
    for _ in range(repeats):
        elapsed, fast_state = run_once(True)
        fast_times.append(elapsed)
        elapsed, slow_state = run_once(False)
        slow_times.append(elapsed)
    assert fast_state == slow_state, (
        "fast-forwarded end state diverged from the per-iteration loop"
    )
    fast, slow = min(fast_times), min(slow_times)
    return {
        "case": "ext_cluster_router_4x",
        "fast_seconds": round(fast, 6),
        "slow_seconds": round(slow, 6),
        "speedup": round(slow / fast, 3),
    }


def test_cluster_fast_loop_speedup(benchmark):
    row = benchmark.pedantic(measure_fast_loop, rounds=1, iterations=1)
    print(
        f"\nCluster fast-loop speedup ({row['case']}): "
        f"{row['speedup']:.2f}x "
        f"(fast {row['fast_seconds'] * 1e3:.1f}ms, "
        f"slow {row['slow_seconds'] * 1e3:.1f}ms)"
    )
    assert row["speedup"] >= FAST_LOOP_TARGET, (
        f"joint-horizon cluster speedup {row['speedup']:.2f}x misses "
        f"the {FAST_LOOP_TARGET:.0f}x target"
    )


def test_ext_cluster_router(benchmark):
    rows, disagg = benchmark.pedantic(_sweeps, rounds=1, iterations=1)
    print("\nCluster routing sweep (shared-prefix trace, bursty arrivals)")
    for row in rows:
        print(
            f"  share x{row.sharing_factor:<2} {row.n_replicas}r "
            f"{row.policy:>24}: hit {row.cache_hit_rate:5.1%} "
            f"TTFT {row.mean_ttft:6.3f}s "
            f"{row.requests_per_minute:6.1f} req/min"
        )
    by_cell = {
        (r.sharing_factor, r.n_replicas, r.policy): r for r in rows
    }
    # The acceptance bar: on the shared-prefix trace, cache-aware
    # routing beats round-robin on aggregate hit rate AND mean TTFT at
    # every fleet size >= 2.
    for n_replicas in REPLICA_COUNTS:
        rr = by_cell[(8, n_replicas, "round_robin")]
        ca = by_cell[(8, n_replicas, "cache_aware")]
        assert ca.cache_hit_rate > rr.cache_hit_rate
        assert ca.mean_ttft < rr.mean_ttft
        assert ca.cache_hit_tokens > rr.cache_hit_tokens
        # Affinity must not degenerate into pinning everything on one
        # replica: every replica still serves requests.
        assert all(n > 0 for n in ca.requests_per_replica)
    # The no-sharing control: nothing to reuse, no policy hits.
    for row in rows:
        if row.sharing_factor == 1:
            assert row.cache_hit_rate == 0.0
    # More replicas serve the same trace faster.
    for policy in ("round_robin", "cache_aware"):
        two = by_cell[(8, 2, policy)]
        four = by_cell[(8, 4, policy)]
        assert four.requests_per_minute > two.requests_per_minute
        assert four.mean_ttft < two.mean_ttft

    print("\nDisaggregated prefill/decode (migration accounting)")
    for row in disagg:
        print(
            f"  {row.interconnect:>6}: {row.migrations} migrations "
            f"{row.migrated_bytes / GB:6.2f}GB "
            f"{row.migration_seconds:6.3f}s link time, "
            f"TTFT {row.mean_ttft:6.3f}s"
        )
    by_link = {row.interconnect: row for row in disagg}
    for row in disagg:
        # Every multi-token request hands its KV across once, and both
        # bytes and link occupancy are accounted.
        assert row.migrations == driver.REQUESTS
        assert row.migrated_bytes > 0
        assert row.migration_seconds > 0
    # The same bytes move ~12x slower over PCIe than NVLink.
    assert (
        by_link["pcie"].migrated_bytes == by_link["nvlink"].migrated_bytes
    )
    assert (
        by_link["pcie"].migration_seconds
        > 5 * by_link["nvlink"].migration_seconds
    )


def test_ext_cluster_deterministic(benchmark):
    first = benchmark.pedantic(
        lambda: driver.serve(2, "cache_aware", sharing_factor=8),
        rounds=1,
        iterations=1,
    )
    second = driver.serve(2, "cache_aware", sharing_factor=8)
    assert first.mean_ttft() == second.mean_ttft()
    assert first.cache_hit_rate == second.cache_hit_rate
    assert first.requests_per_replica == second.requests_per_replica
    assert first.end_time == second.end_time


def main() -> None:
    """Standalone mode: run both sweeps and write them as JSON."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default="cluster_bench.json",
        help="path the JSON results are written to",
    )
    args = parser.parse_args()
    rows, disagg = _sweeps()
    payload = {
        "experiment": "ext_cluster_router",
        "requests": driver.REQUESTS,
        "prefix_tokens": driver.PREFIX_TOKENS,
        "qps": driver.QPS,
        "routing": [dataclasses.asdict(row) for row in rows],
        "disaggregated": [dataclasses.asdict(row) for row in disagg],
        "fast_loop": measure_fast_loop(),
        # One representative cell's full fleet report through the
        # shared serialization path (ClusterReport.to_json).
        "example_report": driver.serve(
            2, "cache_aware", sharing_factor=8
        ).to_json(),
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {args.output}: {len(rows)} routing cells, "
          f"{len(disagg)} disaggregation cells")


if __name__ == "__main__":
    main()
