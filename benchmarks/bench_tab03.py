"""Benchmark regenerating Table 3 (VMM API latencies)."""

from repro.experiments import tab03_vmm_latency as driver
from repro.units import KB, MB


def test_tab03_vmm_latency(benchmark):
    rows = benchmark(driver.run)
    by_api = {r.api: r.latency_us for r in rows}
    print("\nTable 3: VMM API latency (us) per page-group size")
    for row in rows:
        cells = " ".join(
            f"{size}:{row.latency_us[size]:.1f}"
            for size in sorted(row.latency_us)
        )
        print(f"  {row.api:>8}: {cells}")
    assert abs(by_api["map"][2 * MB] - 40.0) < 1e-6  # map + set_access
    assert abs(by_api["map"][64 * KB] - 8.0) < 1e-6  # vMemMap
