"""Benchmark regenerating Table 10 (tensor-slicing block sizes)."""

from repro.experiments import tab10_tensor_slicing as driver


def test_tab10_tensor_slicing(benchmark):
    rows = benchmark(driver.run)
    print("\nTable 10: block size with/without tensor slicing (2MB pages)")
    for row in rows:
        print(
            f"  {row.model:>12} TP-{row.tp_degree}: "
            f"{row.without_slicing} -> {row.with_slicing} tokens"
        )
    by_key = {(r.model, r.tp_degree): r for r in rows}
    assert by_key[("Yi-6B", 1)].with_slicing == 64
    assert by_key[("Llama-3-8B", 1)].with_slicing == 32
    # Slicing shrinks the block by the layer count N.
    for row in rows:
        n_layers = 32 if "8B" in row.model or "6B" in row.model else 60
        assert row.without_slicing // row.with_slicing in (
            n_layers, n_layers + 1, n_layers + 2
        )
